"""Composite (multi-column) secondary index.

Section 3 of the paper notes that Hermit also covers multi-column indexes:
with a host index on ``(A, N)`` and a correlation between ``M`` and ``N``, a
query on ``(A, M)`` is answered by translating the ``M`` range into an ``N``
range and probing the composite host index.  This module provides that
composite host index for both Hermit and the baseline.

Entries are kept in a single sorted array of ``(leading, second, tid)``
triples.  For the scale the reproduction runs at this is as fast as a nested
B+-tree while being considerably simpler; the analytic memory model charges it
exactly like a two-key B+-tree so space comparisons stay fair.
"""

from __future__ import annotations

import bisect
import time
from typing import Iterable, Iterator

import numpy as np

from repro.errors import KeyNotFoundError, StorageError
from repro.index.base import IndexStatistics, KeyRange, tid_items
from repro.storage.identifiers import PointerScheme, TupleId
from repro.storage.memory import DEFAULT_SIZE_MODEL, SizeModel


class CompositeIndex:
    """An index over a pair of columns ``(leading, second)``.

    Supports the access pattern the paper needs: a conjunctive range predicate
    on both key parts.
    """

    def __init__(self, size_model: SizeModel = DEFAULT_SIZE_MODEL,
                 node_capacity: int = 32) -> None:
        self.stats = IndexStatistics()
        self._size_model = size_model
        self._node_capacity = node_capacity
        self._entries: list[tuple[float, float, TupleId]] = []

    def insert(self, leading: float, second: float, tid: TupleId) -> None:
        """Insert the entry ``(leading, second) -> tid``."""
        self.stats.inserts += 1
        bisect.insort(self._entries, (float(leading), float(second), tid))

    def insert_many(self, leading: Iterable[float], second: Iterable[float],
                    tids: Iterable[TupleId]) -> None:
        """Batched insert: append the batch and let Timsort merge the runs."""
        batch = sorted(
            (float(lead), float(sec), tid)
            for lead, sec, tid in zip(leading, second, tid_items(list(tids)))
        )
        if not batch:
            return
        self.stats.inserts += len(batch)
        self._entries.extend(batch)
        self._entries.sort()

    def bulk_load(self,
                  triples: Iterable[tuple[float, float, TupleId]]) -> None:
        """Build the index from ``(leading, second, tid)`` triples in one sort.

        Raises:
            StorageError: If the index already holds entries (rebuilding in
                place would silently discard them).
        """
        if self._entries:
            raise StorageError(
                "bulk_load on a non-empty CompositeIndex would discard "
                f"{len(self._entries)} existing entries; build a fresh index"
            )
        materialised = list(triples)
        self._entries = sorted(
            (float(lead), float(sec), tid)
            for (lead, sec, _), tid in zip(
                materialised, tid_items([t for _, _, t in materialised])
            )
        )

    def delete(self, leading: float, second: float, tid: TupleId) -> None:
        """Remove the entry ``(leading, second) -> tid``.

        Raises:
            KeyNotFoundError: If the entry is absent.
        """
        self.stats.deletes += 1
        entry = (float(leading), float(second), tid)
        index = bisect.bisect_left(self._entries, entry)
        if index < len(self._entries) and self._entries[index] == entry:
            self._entries.pop(index)
            return
        raise KeyNotFoundError(f"entry {entry!r} is not in the index")

    def range_search(self, leading_range: KeyRange,
                     second_range: KeyRange) -> list[TupleId]:
        """Return tuple ids matching both closed ranges."""
        self.stats.range_lookups += 1
        start = bisect.bisect_left(self._entries, (leading_range.low, float("-inf"), ""))
        results: list[TupleId] = []
        for position in range(start, len(self._entries)):
            leading, second, tid = self._entries[position]
            if leading > leading_range.high:
                break
            if second_range.contains(second):
                results.append(tid)
        return results

    def range_search_many(self, leading_range: KeyRange,
                          second_ranges: list[KeyRange]) -> list[TupleId]:
        """Union of :meth:`range_search` over several second-key ranges."""
        results: list[TupleId] = []
        # repro: ignore[REP004] -- per-conjunct union over the handful of
        # second-key ranges a plan carries, not per-element work
        for second_range in second_ranges:
            results.extend(self.range_search(leading_range, second_range))
        return results

    def range_search_array(self, leading_range: KeyRange,
                           second_range: KeyRange) -> np.ndarray:
        """Array-native conjunctive probe: bisect the leading run, mask the rest.

        Two binary searches locate the contiguous leading-key run; the
        second-key filter is one vectorized mask over that run instead of a
        per-entry Python comparison — the planner's access-path contract.
        """
        self.stats.range_lookups += 1
        start = bisect.bisect_left(self._entries, leading_range.low,
                                   key=lambda entry: entry[0])
        stop = bisect.bisect_right(self._entries, leading_range.high,
                                   key=lambda entry: entry[0])
        run = self._entries[start:stop]
        if not run:
            return np.empty(0, dtype=np.int64)
        seconds = np.fromiter((entry[1] for entry in run),
                              dtype=np.float64, count=len(run))
        tids = np.asarray([entry[2] for entry in run])
        mask = (seconds >= second_range.low) & (seconds <= second_range.high)
        return tids[mask]

    def items(self) -> Iterator[tuple[float, float, TupleId]]:
        """Iterate entries in key order."""
        return iter(self._entries)

    @property
    def num_entries(self) -> int:
        """Number of entries stored."""
        return len(self._entries)

    def memory_bytes(self) -> int:
        """Analytic size in bytes; charged as a B+-tree with 16-byte keys."""
        two_key_model = SizeModel(
            key_bytes=2 * self._size_model.key_bytes,
            pointer_bytes=self._size_model.pointer_bytes,
            node_header_bytes=self._size_model.node_header_bytes,
            hash_entry_overhead_bytes=self._size_model.hash_entry_overhead_bytes,
            leaf_model_bytes=self._size_model.leaf_model_bytes,
        )
        return two_key_model.btree_bytes(len(self._entries), self._node_capacity)


class CompositeSecondaryIndex:
    """Engine mechanism wrapping a :class:`CompositeIndex` on two columns.

    Exposes the same maintenance surface as the single-column mechanisms
    (``insert``/``insert_many``/``delete``/``update`` row notifications from
    the database facade) plus the planner's pair access path: one probe that
    answers a conjunctive predicate on ``(leading_column, second_column)``
    exactly, with no false positives.

    Args:
        table: The base table.
        leading_column: Leading key column of the composite index.
        second_column: Second key column.
        primary_index: Primary index, required for logical pointers.
        pointer_scheme: Tuple-identifier scheme stored in the index.
        size_model: Analytic memory model.
    """

    def __init__(self, table, leading_column: str, second_column: str,
                 primary_index=None,
                 pointer_scheme: PointerScheme = PointerScheme.PHYSICAL,
                 size_model: SizeModel = DEFAULT_SIZE_MODEL) -> None:
        if pointer_scheme.needs_primary_lookup and primary_index is None:
            raise StorageError(
                "logical pointers require a primary index to resolve locations"
            )
        self.table = table
        self.leading_column = leading_column
        self.second_column = second_column
        self.primary_index = primary_index
        self.pointer_scheme = pointer_scheme
        self.index = CompositeIndex(size_model=size_model)

    # ----------------------------------------------------------- construction

    def build(self) -> None:
        """Bulk-load the composite index from the current table contents."""
        slots, leading, second = self.table.project(
            [self.leading_column, self.second_column]
        )
        if self.pointer_scheme is PointerScheme.PHYSICAL:
            tids = slots
        else:
            tids = self.table.values(slots, self.table.schema.primary_key)
        self.index.bulk_load(zip(leading.tolist(), second.tolist(),
                                 tids.tolist()))

    # ------------------------------------------------------ planner interface

    def candidate_tids_pair(self, leading_range: KeyRange,
                            second_range: KeyRange, breakdown) -> np.ndarray:
        """Candidate tids matching both ranges (exact; one array probe)."""
        started = time.perf_counter()
        tids = self.index.range_search_array(leading_range, second_range)
        breakdown.host_index_seconds += time.perf_counter() - started
        return tids

    def estimate_candidates(self, leading_range: KeyRange,
                            second_range: KeyRange, leading_stats,
                            second_stats) -> float:
        """Estimated candidates under predicate independence (exact index)."""
        rows = leading_stats.row_count
        return (rows * leading_stats.selectivity(leading_range)
                * second_stats.selectivity(second_range))

    # ------------------------------------------------------------ maintenance

    def insert(self, row: dict, location: int) -> None:
        """Index a newly inserted row."""
        self.index.insert(float(row[self.leading_column]),
                          float(row[self.second_column]),
                          self._tid_for(row, location))

    def insert_many(self, columns: dict, locations: np.ndarray) -> None:
        """Batched :meth:`insert`: one sorted merge into the entry list."""
        leading = np.asarray(columns[self.leading_column], dtype=np.float64)
        second = np.asarray(columns[self.second_column], dtype=np.float64)
        if self.pointer_scheme is PointerScheme.PHYSICAL:
            tids = np.asarray(locations, dtype=np.int64)
        else:
            tids = np.asarray(columns[self.table.schema.primary_key],
                              dtype=np.float64)
        self.index.insert_many(leading.tolist(), second.tolist(),
                               tids.tolist())

    def delete(self, row: dict, location: int) -> None:
        """Remove the index entry for a deleted row."""
        self.index.delete(float(row[self.leading_column]),
                          float(row[self.second_column]),
                          self._tid_for(row, location))

    def update(self, old_row: dict, new_row: dict, location: int) -> None:
        """Re-index a row whose key columns may have changed."""
        self.delete(old_row, location)
        self.insert(new_row, location)

    def _tid_for(self, row: dict, location: int) -> TupleId:
        if self.pointer_scheme is PointerScheme.PHYSICAL:
            return location
        return row[self.table.schema.primary_key]

    # ------------------------------------------------------------- accounting

    def memory_bytes(self) -> int:
        """Analytic size of the composite index in bytes."""
        return self.index.memory_bytes()
