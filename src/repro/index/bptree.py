"""In-memory B+-tree.

This is the conventional secondary index the paper calls "Baseline", and it is
also used as the host index and as the primary index of the in-memory engine.
Keys are numeric; the tree is non-unique (several tuple identifiers may be
stored under the same key), which matches how a secondary index on a data
column behaves.

The implementation is a textbook B+-tree: sorted keys inside fixed-capacity
nodes, leaf-level sibling chaining for range scans, top-down descent with
bottom-up splits.  Deletion removes entries but does not rebalance (leaves may
become under-full); this keeps the structure simple and does not affect any of
the reproduced experiments, none of which depend on shrink-side rebalancing.
"""

from __future__ import annotations

import bisect
from itertools import chain
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import KeyNotFoundError, StorageError
from repro.index.base import Index, KeyRange, tid_items
from repro.segments import empty_offsets, run_indices
from repro.storage.identifiers import TupleId
from repro.storage.memory import DEFAULT_SIZE_MODEL, SizeModel

DEFAULT_NODE_CAPACITY = 32

# Amortisation accounting for ``_use_flat_view``, in flat-view
# entry-equivalents: the per-probe constants price a root-to-leaf descent
# plus per-call Python overhead, and every entry a scalar probe touches is
# charged ``_TOUCHED_ENTRY_COST`` because the fragmented per-range
# chain/asarray passes cost roughly twice the one bulk pass of a flatten.
_RANGE_PROBE_COST = 32
_POINT_PROBE_COST = 8
_TOUCHED_ENTRY_COST = 2


class _Node:
    __slots__ = ("keys",)

    def __init__(self) -> None:
        self.keys: list[float] = []


class _LeafNode(_Node):
    __slots__ = ("values", "next_leaf")

    def __init__(self) -> None:
        super().__init__()
        # values[i] is the list of tuple ids stored under keys[i]
        self.values: list[list[TupleId]] = []
        self.next_leaf: _LeafNode | None = None

    @property
    def is_leaf(self) -> bool:
        return True


class _InternalNode(_Node):
    __slots__ = ("children",)

    def __init__(self) -> None:
        super().__init__()
        # len(children) == len(keys) + 1
        self.children: list[_Node] = []

    @property
    def is_leaf(self) -> bool:
        return False


class BPlusTree(Index):
    """A non-unique in-memory B+-tree mapping numeric keys to tuple ids.

    Args:
        node_capacity: Maximum number of keys per node before it splits.
        size_model: Analytic cost model for :meth:`memory_bytes`.
    """

    def __init__(self, node_capacity: int = DEFAULT_NODE_CAPACITY,
                 size_model: SizeModel = DEFAULT_SIZE_MODEL) -> None:
        super().__init__()
        if node_capacity < 4:
            raise ValueError("node_capacity must be at least 4")
        self.node_capacity = node_capacity
        self._size_model = size_model
        self._root: _Node = _LeafNode()
        self._num_entries = 0
        self._height = 1
        # Lazily built flattened view of the leaf level for the segmented
        # batch probes; any write drops it (see _flattened).  The debt
        # counter accumulates the scalar-path work of batches that skipped
        # the O(n) flatten, so the view is only built once batch traffic
        # would have paid for it (see _use_flat_view).
        self._flat_view: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None
        self._flat_debt = 0

    # ------------------------------------------------------------------ write

    def insert(self, key: float, tid: TupleId) -> None:
        """Insert ``key -> tid``; duplicates of the same pair are allowed."""
        self.stats.inserts += 1
        split = self._insert_into(self._root, float(key), tid)
        if split is not None:
            separator, right = split
            new_root = _InternalNode()
            new_root.keys = [separator]
            new_root.children = [self._root, right]
            self._root = new_root
            self._height += 1
        self._num_entries += 1
        self._flat_view = None

    def delete(self, key: float, tid: TupleId) -> None:
        """Remove one occurrence of ``key -> tid``.

        Raises:
            KeyNotFoundError: If the pair is not present.
        """
        self.stats.deletes += 1
        key = float(key)
        leaf = self._find_leaf(key)
        index = bisect.bisect_left(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            tids = leaf.values[index]
            try:
                tids.remove(tid)
            except ValueError:
                raise KeyNotFoundError(
                    f"tid {tid!r} is not stored under key {key!r}"
                ) from None
            if not tids:
                leaf.keys.pop(index)
                leaf.values.pop(index)
            self._num_entries -= 1
            self._flat_view = None
            return
        raise KeyNotFoundError(f"key {key!r} is not in the index")

    def insert_many(self, keys: Sequence[float] | np.ndarray,
                    tids: Sequence[TupleId] | np.ndarray) -> None:
        """Batched insert: sort once, merge the run into the leaf level.

        The batch is sorted once and pushed down the tree recursively: each
        internal node partitions the sorted run among its children with one
        bisect per separator, and each touched leaf merges its sorted keys
        with the incoming run in a single two-pointer pass.  Overfull nodes
        split into however many nodes they need in one step (a batch can
        overflow a leaf by far more than one key), so the cost is one
        partition pass plus one merge per touched leaf instead of one root
        descent per key.
        """
        keys = np.asarray(keys, dtype=np.float64)
        items = tid_items(tids)
        if keys.size != len(items):
            raise StorageError("keys and tids must have equal length")
        if keys.size == 0:
            return
        self.stats.inserts += int(keys.size)
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order].tolist()
        sorted_tids = [items[position] for position in order.tolist()]
        if self._num_entries == 0:
            # The tree is empty: packing fresh leaves is strictly better than
            # merging into the (single, empty) existing leaf.
            self.bulk_load(zip(sorted_keys, sorted_tids))
            return
        splits = self._merge_into(self._root, sorted_keys, sorted_tids)
        while splits:
            new_root = _InternalNode()
            new_root.keys = [separator for separator, _ in splits]
            new_root.children = [self._root] + [node for _, node in splits]
            self._root = new_root
            self._height += 1
            splits = (self._multi_split_internal(new_root)
                      if len(new_root.keys) > self.node_capacity else None)
        self._num_entries += int(keys.size)
        self._flat_view = None

    def bulk_load(self, pairs: Iterable[tuple[float, TupleId]]) -> None:
        """Build the tree from (key, tid) pairs.

        Pairs are sorted, packed into leaves at ~70% fill and the internal
        levels are built bottom-up, mirroring the single-thread bulk loading
        the paper uses for the baseline B+-tree.

        Raises:
            StorageError: If the tree already holds entries.  Bulk loading
                replaces the whole structure, so calling it on a non-empty
                tree would silently discard the existing entries (while
                ``num_entries`` kept counting them); incremental
                :meth:`insert` is the right tool there.
        """
        if self._num_entries:
            raise StorageError(
                f"bulk_load on a non-empty BPlusTree would discard "
                f"{self._num_entries} existing entries; use insert() instead"
            )
        ordered = sorted(((float(k), t) for k, t in pairs), key=lambda p: p[0])
        if not ordered:
            return
        fill = max(4, int(self.node_capacity * 0.7))
        leaves: list[_LeafNode] = []
        current = _LeafNode()
        for key, tid in ordered:
            if current.keys and current.keys[-1] == key:
                current.values[-1].append(tid)
            else:
                if len(current.keys) >= fill:
                    leaves.append(current)
                    fresh = _LeafNode()
                    current.next_leaf = fresh
                    current = fresh
                current.keys.append(key)
                current.values.append([tid])
            self._num_entries += 1
        leaves.append(current)

        level: list[_Node] = list(leaves)
        self._height = 1
        while len(level) > 1:
            parents: list[_Node] = []
            for start in range(0, len(level), fill):
                group = level[start:start + fill]
                if len(group) == 1:
                    parents.append(group[0])
                    continue
                parent = _InternalNode()
                parent.children = list(group)
                parent.keys = [self._smallest_key(child) for child in group[1:]]
                parents.append(parent)
            level = parents
            self._height += 1
        self._root = level[0]
        self._flat_view = None

    # ------------------------------------------------------------------- read

    def search(self, key: float) -> list[TupleId]:
        """Return all tuple ids stored under ``key`` (empty list if absent)."""
        self.stats.lookups += 1
        key = float(key)
        leaf = self._find_leaf(key)
        index = bisect.bisect_left(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            return list(leaf.values[index])
        return []

    def range_search(self, key_range: KeyRange) -> list[TupleId]:
        """Return all tuple ids whose key lies in the closed ``key_range``."""
        self.stats.range_lookups += 1
        results: list[TupleId] = []
        leaf: _LeafNode | None = self._find_leaf(key_range.low)
        start = bisect.bisect_left(leaf.keys, key_range.low)
        while leaf is not None:
            for index in range(start, len(leaf.keys)):
                key = leaf.keys[index]
                if key > key_range.high:
                    return results
                results.extend(leaf.values[index])
            leaf = leaf.next_leaf
            start = 0
        return results

    def range_search_array(self, key_range: KeyRange) -> np.ndarray:
        """Array-native range scan: gather whole leaf runs, convert once.

        Instead of extending a Python list one key at a time, each visited
        leaf contributes its matching ``values[start:stop]`` slice (located
        with two bisects per leaf); the per-key tid lists are flattened with a
        single C-level ``chain`` pass and converted to one numpy array.  This
        is the hot path of the vectorized Hermit lookup.
        """
        self.stats.range_lookups += 1
        flat = self._range_tids(key_range.low, key_range.high)
        if not flat:
            return np.empty(0, dtype=np.int64)
        return np.asarray(flat)

    def search_many(self, keys: Sequence[float] | np.ndarray) -> np.ndarray:
        """Batched point probe: one descent per key, one final conversion.

        A B+-tree probe is inherently per-key, but the batch avoids the
        per-key ``search`` dispatch, list copy and stats bump of the base
        fallback — this is the primary-resolution hot path of the vectorized
        lookup under logical pointers.
        """
        keys = [float(key) for key in keys]
        self.stats.lookups += len(keys)
        runs: list[list[TupleId]] = []
        # repro: ignore[REP004] -- per-key descent is the tree's point-probe
        # primitive; the flat-view batch path is search_many_segmented
        for key in keys:
            leaf = self._find_leaf(key)
            index = bisect.bisect_left(leaf.keys, key)
            if index < len(leaf.keys) and leaf.keys[index] == key:
                runs.append(leaf.values[index])
        flat = list(chain.from_iterable(runs))
        if not flat:
            return np.empty(0, dtype=np.int64)
        return np.asarray(flat)

    def range_search_segmented(
        self, ranges: "Sequence[KeyRange]",
    ) -> tuple[np.ndarray, np.ndarray]:
        """Segmented multi-range probe, flat-view-backed once it pays off.

        Where the scalar probe pays a root-to-leaf descent plus a Python
        leaf walk per range, the batch resolves *all* ranges against the
        cached flat view (:meth:`_flattened`) — two ``searchsorted`` passes
        locate every range's key run and one :func:`~repro.segments.run_indices`
        gather pulls the tids out.  The O(n) flatten is only worth paying
        when enough batch traffic amortises it, so small batches on a cold
        tree keep the per-range leaf walk and accumulate debt instead
        (:meth:`_use_flat_view`); both paths emit identical segments.
        """
        self.stats.range_lookups += len(ranges)
        count = len(ranges)
        if not self._use_flat_view(_RANGE_PROBE_COST * count):
            segments: list[list[TupleId]] = []
            offsets = np.zeros(count + 1, dtype=np.int64)
            total = 0
            # repro: ignore[REP004] -- documented scalar fallback while the
            # flat-view debt counter says a cold flatten would cost more
            for position, key_range in enumerate(ranges):
                flat = self._range_tids(key_range.low, key_range.high)
                segments.append(flat)
                total += len(flat)
                offsets[position + 1] = total
            self._flat_debt += (_TOUCHED_ENTRY_COST * total
                                + _RANGE_PROBE_COST * count)
            merged = list(chain.from_iterable(segments))
            tids = (np.asarray(merged) if merged
                    else np.empty(0, dtype=np.int64))
            return tids, offsets
        keys, key_offsets, tids = self._flattened()
        lows = np.fromiter((key_range.low for key_range in ranges),
                           dtype=np.float64, count=count)
        highs = np.fromiter((key_range.high for key_range in ranges),
                            dtype=np.float64, count=count)
        starts = np.searchsorted(keys, lows, side="left")
        stops = np.searchsorted(keys, highs, side="right")
        indices, offsets = run_indices(key_offsets[starts],
                                       key_offsets[stops])
        return tids[indices], offsets

    def search_many_segmented(
        self, keys: np.ndarray, offsets: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Segmented batched point probe off the flattened leaf level.

        This is where batching beats B per-query ``search_many`` calls
        *algorithmically*, not just on dispatch: instead of a full
        root-to-leaf descent per key, the whole batch binary-searches the
        cached flat view (:meth:`_flattened`) in one ``searchsorted`` pass
        and gathers the matching tid runs with one
        :func:`~repro.segments.run_indices` call.  This is the
        primary-index resolution pass of the batched executor under
        logical pointers, where per-key descents dominate the whole
        lookup.  Probes are resolved in input order, so the per-key runs
        are already grouped by input segment and the output offsets are a
        plain fancy-index of the per-key ones.
        """
        keys = np.asarray(keys, dtype=np.float64)
        num_segments = offsets.size - 1
        if keys.size == 0:
            return np.empty(0, dtype=np.int64), empty_offsets(num_segments)
        self.stats.lookups += int(keys.size)
        if not self._use_flat_view(_POINT_PROBE_COST * int(keys.size)):
            runs: list[list[TupleId]] = []
            per_key = np.zeros(keys.size + 1, dtype=np.int64)
            total = 0
            # repro: ignore[REP004] -- documented scalar fallback while the
            # flat-view debt counter says a cold flatten would cost more
            for position, key in enumerate(keys.tolist()):
                leaf = self._find_leaf(key)
                index = bisect.bisect_left(leaf.keys, key)
                if index < len(leaf.keys) and leaf.keys[index] == key:
                    bucket = leaf.values[index]
                    runs.append(bucket)
                    total += len(bucket)
                per_key[position + 1] = total
            self._flat_debt += (_TOUCHED_ENTRY_COST * total
                                + _POINT_PROBE_COST * int(keys.size))
            merged = list(chain.from_iterable(runs))
            tids = (np.asarray(merged) if merged
                    else np.empty(0, dtype=np.int64))
            return tids, per_key[offsets]
        flat_keys, key_offsets, tids = self._flattened()
        if flat_keys.size == 0:
            return np.empty(0, dtype=np.int64), empty_offsets(num_segments)
        positions = np.searchsorted(flat_keys, keys, side="left")
        hit = positions < flat_keys.size
        safe = np.where(hit, positions, 0)
        hit &= flat_keys[safe] == keys
        starts = np.where(hit, key_offsets[safe], 0)
        stops = np.where(hit, key_offsets[safe + 1], 0)
        indices, per_key = run_indices(starts, stops)
        return tids[indices], per_key[offsets]

    def items(self) -> Iterator[tuple[float, TupleId]]:
        """Iterate all (key, tid) pairs in key order."""
        leaf: _LeafNode | None = self._leftmost_leaf()
        while leaf is not None:
            for key, tids in zip(leaf.keys, leaf.values):
                for tid in tids:
                    yield key, tid
            leaf = leaf.next_leaf

    # ------------------------------------------------------------- accounting

    @property
    def num_entries(self) -> int:
        """Number of (key, tid) entries stored."""
        return self._num_entries

    @property
    def height(self) -> int:
        """Number of levels, including the leaf level."""
        return self._height

    def memory_bytes(self) -> int:
        """Analytic size in bytes (see :class:`SizeModel`)."""
        return self._size_model.btree_bytes(self._num_entries, self.node_capacity)

    # ---------------------------------------------------------------- private

    def _use_flat_view(self, projected_cost: int) -> bool:
        """Should this segmented batch (build and) use the flat view?

        A cached view is always used — it is free.  Otherwise the batch
        only triggers the O(n) flatten once the scalar work skipped so far
        (``_flat_debt``, in entry-equivalents) plus this batch's projected
        probe overhead would have paid for one flatten.  Rare small batches
        on a big tree therefore never pay O(n), while steady batch traffic
        converges to the array path after a bounded amount of scalar work;
        writes drop the view but keep the debt, so a proven batch workload
        rebuilds it on the first batch of each write-free window.
        """
        if self._flat_view is not None:
            return True
        return self._flat_debt + projected_cost >= self._num_entries

    def _range_tids(self, low: float, high: float) -> list[TupleId]:
        """One leaf-chain range walk, as a flat tid list (no stats bump)."""
        runs: list[list[TupleId]] = []
        leaf: _LeafNode | None = self._find_leaf(low)
        start = bisect.bisect_left(leaf.keys, low)
        while leaf is not None:
            stop = bisect.bisect_right(leaf.keys, high, start)
            runs.extend(leaf.values[start:stop])
            if stop < len(leaf.keys):
                break
            leaf = leaf.next_leaf
            start = 0
        return list(chain.from_iterable(runs))

    def _flattened(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Sorted keys, per-key tid offsets and flat tids of the leaf level.

        One walk of the leaf chain materialises the whole key space as
        ``(keys, key_offsets, tids)`` — key ``i`` owns
        ``tids[key_offsets[i]:key_offsets[i + 1]]``, tids in per-key
        insertion order (exactly the order the scalar leaf walk emits).
        Cached until any write; the segmented batch probes rebuild it at
        most once per write-free window, turning B leaf walks into two
        ``searchsorted`` calls and one gather.  The view is a *copy* of the
        leaf contents, so it costs O(n) extra memory while live — it is
        built lazily, only for trees that actually serve batched probes.
        """
        if self._flat_view is None:
            all_keys: list[float] = []
            all_values: list[list[TupleId]] = []
            leaf: _LeafNode | None = self._leftmost_leaf()
            while leaf is not None:
                all_keys.extend(leaf.keys)
                all_values.extend(leaf.values)
                leaf = leaf.next_leaf
            keys = np.asarray(all_keys, dtype=np.float64)
            counts = np.fromiter(map(len, all_values), dtype=np.int64,
                                 count=len(all_values))
            key_offsets = np.zeros(counts.size + 1, dtype=np.int64)
            np.cumsum(counts, out=key_offsets[1:])
            flat = list(chain.from_iterable(all_values))
            tids = np.asarray(flat) if flat else np.empty(0, dtype=np.int64)
            self._flat_view = (keys, key_offsets, tids)
        return self._flat_view

    def _find_leaf(self, key: float) -> _LeafNode:
        node = self._root
        while not node.is_leaf:
            index = bisect.bisect_right(node.keys, key)
            node = node.children[index]
        return node  # type: ignore[return-value]

    def _leftmost_leaf(self) -> _LeafNode:
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        return node  # type: ignore[return-value]

    def _smallest_key(self, node: _Node) -> float:
        while not node.is_leaf:
            node = node.children[0]
        return node.keys[0]

    def _insert_into(self, node: _Node, key: float,
                     tid: TupleId) -> tuple[float, _Node] | None:
        if node.is_leaf:
            return self._insert_into_leaf(node, key, tid)  # type: ignore[arg-type]
        internal: _InternalNode = node  # type: ignore[assignment]
        index = bisect.bisect_right(internal.keys, key)
        split = self._insert_into(internal.children[index], key, tid)
        if split is None:
            return None
        separator, right = split
        internal.keys.insert(index, separator)
        internal.children.insert(index + 1, right)
        if len(internal.keys) <= self.node_capacity:
            return None
        return self._split_internal(internal)

    def _insert_into_leaf(self, leaf: _LeafNode, key: float,
                          tid: TupleId) -> tuple[float, _Node] | None:
        index = bisect.bisect_left(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            leaf.values[index].append(tid)
            return None
        leaf.keys.insert(index, key)
        leaf.values.insert(index, [tid])
        if len(leaf.keys) <= self.node_capacity:
            return None
        return self._split_leaf(leaf)

    def _merge_into(self, node: _Node, keys: list[float],
                    tids: list[TupleId]) -> list[tuple[float, _Node]] | None:
        """Merge a sorted (keys, tids) run into the subtree rooted at ``node``.

        Returns the (separator, new right sibling) pairs the caller must
        splice in, ascending — ``None`` when the node absorbed the run
        without splitting.  Unlike ``_insert_into`` this may return several
        siblings at once.
        """
        if node.is_leaf:
            return self._merge_into_leaf(node, keys, tids)  # type: ignore[arg-type]
        internal: _InternalNode = node  # type: ignore[assignment]
        # Child c receives keys k with separators[c-1] <= k < separators[c],
        # matching the bisect_right descent of the scalar insert.
        boundaries = [bisect.bisect_left(keys, separator)
                      for separator in internal.keys]
        starts = [0] + boundaries
        stops = boundaries + [len(keys)]
        # Walk children right-to-left so splice positions stay valid while
        # separators/children are inserted.
        for position in range(len(internal.children) - 1, -1, -1):
            start, stop = starts[position], stops[position]
            if start == stop:
                continue
            splits = self._merge_into(internal.children[position],
                                      keys[start:stop], tids[start:stop])
            if splits:
                internal.keys[position:position] = [s for s, _ in splits]
                internal.children[position + 1:position + 1] = [
                    n for _, n in splits
                ]
        if len(internal.keys) <= self.node_capacity:
            return None
        return self._multi_split_internal(internal)

    def _merge_into_leaf(self, leaf: _LeafNode, keys: list[float],
                         tids: list[TupleId]) -> list[tuple[float, _Node]] | None:
        """Two-pointer merge of a sorted run into one leaf, multi-splitting."""
        merged_keys: list[float] = []
        merged_values: list[list[TupleId]] = []
        existing_keys, existing_values = leaf.keys, leaf.values
        i = j = 0
        n, m = len(existing_keys), len(keys)
        while i < n or j < m:
            if j >= m or (i < n and existing_keys[i] <= keys[j]):
                merged_keys.append(existing_keys[i])
                merged_values.append(existing_values[i])
                i += 1
            elif merged_keys and merged_keys[-1] == keys[j]:
                merged_values[-1].append(tids[j])
                j += 1
            else:
                merged_keys.append(keys[j])
                merged_values.append([tids[j]])
                j += 1
        if len(merged_keys) <= self.node_capacity:
            leaf.keys, leaf.values = merged_keys, merged_values
            return None
        fill = max(4, int(self.node_capacity * 0.7))
        leaf.keys = merged_keys[:fill]
        leaf.values = merged_values[:fill]
        tail = leaf.next_leaf
        siblings: list[tuple[float, _Node]] = []
        previous = leaf
        for start in range(fill, len(merged_keys), fill):
            sibling = _LeafNode()
            sibling.keys = merged_keys[start:start + fill]
            sibling.values = merged_values[start:start + fill]
            previous.next_leaf = sibling
            siblings.append((sibling.keys[0], sibling))
            previous = sibling
        previous.next_leaf = tail
        return siblings

    def _multi_split_internal(self, node: _InternalNode) -> list[tuple[float, _Node]]:
        """Split an overfull internal node into as many nodes as needed."""
        fill = max(4, int(self.node_capacity * 0.7))
        all_keys, all_children = node.keys, node.children
        step = fill + 1  # children per resulting node
        node.keys = all_keys[:fill]
        node.children = all_children[:step]
        siblings: list[tuple[float, _Node]] = []
        for start in range(step, len(all_children), step):
            stop = min(len(all_children), start + step)
            sibling = _InternalNode()
            sibling.children = all_children[start:stop]
            sibling.keys = all_keys[start:start + (stop - start) - 1]
            # all_keys[start - 1] separates the previous group's last child
            # from this group's first child; it is promoted to the parent.
            siblings.append((all_keys[start - 1], sibling))
        return siblings

    def _split_leaf(self, leaf: _LeafNode) -> tuple[float, _Node]:
        middle = len(leaf.keys) // 2
        right = _LeafNode()
        right.keys = leaf.keys[middle:]
        right.values = leaf.values[middle:]
        leaf.keys = leaf.keys[:middle]
        leaf.values = leaf.values[:middle]
        right.next_leaf = leaf.next_leaf
        leaf.next_leaf = right
        return right.keys[0], right

    def _split_internal(self, node: _InternalNode) -> tuple[float, _Node]:
        middle = len(node.keys) // 2
        separator = node.keys[middle]
        right = _InternalNode()
        right.keys = node.keys[middle + 1:]
        right.children = node.children[middle + 1:]
        node.keys = node.keys[:middle]
        node.children = node.children[:middle + 1]
        return separator, right
