"""Index substrate: B+-trees (in-memory and paged), hash index, composite index."""

from repro.index.base import Index, IndexStatistics, KeyRange
from repro.index.bptree import BPlusTree
from repro.index.composite import CompositeIndex
from repro.index.hash_index import HashIndex
from repro.index.paged_bptree import PagedBPlusTree

__all__ = [
    "BPlusTree",
    "CompositeIndex",
    "HashIndex",
    "Index",
    "IndexStatistics",
    "KeyRange",
    "PagedBPlusTree",
]
