"""Index substrate: B+-trees (in-memory and paged), hash, sorted-column, composite."""

from repro.index.base import Index, IndexStatistics, KeyRange
from repro.index.bptree import BPlusTree
from repro.index.composite import CompositeIndex, CompositeSecondaryIndex
from repro.index.hash_index import HashIndex
from repro.index.paged_bptree import PagedBPlusTree
from repro.index.sorted_column import SortedColumnIndex

__all__ = [
    "BPlusTree",
    "CompositeIndex",
    "CompositeSecondaryIndex",
    "HashIndex",
    "Index",
    "IndexStatistics",
    "KeyRange",
    "PagedBPlusTree",
    "SortedColumnIndex",
]
