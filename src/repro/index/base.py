"""Index interfaces shared by all index structures.

Every index in the library — the in-memory B+-tree, the page-based B+-tree,
the hash index, the sorted-column index, the TRS-Tree-backed Hermit index and
the Correlation Map — exposes the same small surface so the engine's executor,
the baselines and the benchmarks can swap them freely.

Two flavours of the read API coexist:

* the *scalar* methods (``search`` / ``range_search`` / ``range_search_many``)
  return Python lists, one tuple identifier at a time — this is the seed
  implementation and the reference semantics, and
* the *array* methods (``search_many`` / ``range_search_array`` /
  ``range_search_many_array``) return numpy arrays so the whole Hermit lookup
  pipeline can stay array-native end to end.  The base class provides
  fallbacks built on the scalar methods; concrete indexes override them with
  genuinely vectorized implementations.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.segments import concat_segments, empty_offsets
from repro.storage.identifiers import TupleId


def tid_items(tids: "Sequence[TupleId] | np.ndarray") -> list:
    """Normalise a tid sequence to native Python objects.

    Index structures store tids inside Python containers (leaf bucket
    lists, hash buckets, outlier buffers), so numpy scalars are unboxed
    once up front — the shared first step of every batched write API.
    """
    if isinstance(tids, np.ndarray):
        return tids.tolist()
    return [tid.item() if hasattr(tid, "item") else tid for tid in tids]


@dataclass(frozen=True)
class KeyRange:
    """A closed interval ``[low, high]`` over an index key domain.

    Point probes are expressed as degenerate ranges where ``low == high``.
    """

    low: float
    high: float

    def __post_init__(self) -> None:
        if self.low > self.high:
            # Normalise reversed bounds; callers that build ranges from a
            # negative-slope linear function rely on this.
            low, high = self.high, self.low
            object.__setattr__(self, "low", low)
            object.__setattr__(self, "high", high)

    @property
    def is_point(self) -> bool:
        """Whether the range denotes a single key."""
        return self.low == self.high

    @property
    def width(self) -> float:
        """Width of the interval."""
        return self.high - self.low

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the closed interval."""
        return self.low <= value <= self.high

    def overlaps(self, other: "KeyRange") -> bool:
        """Whether the two closed intervals intersect."""
        return self.low <= other.high and other.low <= self.high

    def intersect(self, other: "KeyRange") -> "KeyRange | None":
        """Intersection with ``other``, or None if they are disjoint."""
        low = max(self.low, other.low)
        high = min(self.high, other.high)
        if low > high:
            return None
        return KeyRange(low, high)

    @staticmethod
    def union(ranges: Iterable["KeyRange"]) -> list["KeyRange"]:
        """Merge overlapping ranges into a minimal disjoint cover.

        This implements the ``Union(RS)`` step of the TRS-Tree lookup
        (Algorithm 2): ranges produced by neighbouring leaves frequently
        overlap and merging them avoids redundant host-index probes.
        """
        ordered = sorted(ranges, key=lambda r: (r.low, r.high))
        merged: list[KeyRange] = []
        for candidate in ordered:
            if merged and candidate.low <= merged[-1].high:
                last = merged[-1]
                if candidate.high > last.high:
                    merged[-1] = KeyRange(last.low, candidate.high)
            else:
                merged.append(candidate)
        return merged


@dataclass
class IndexStatistics:
    """Operation counters kept by every index, used in breakdown figures."""

    lookups: int = 0
    range_lookups: int = 0
    inserts: int = 0
    deletes: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.lookups = 0
        self.range_lookups = 0
        self.inserts = 0
        self.deletes = 0


class Index(abc.ABC):
    """Abstract key → tuple-identifier index."""

    def __init__(self) -> None:
        self.stats = IndexStatistics()

    @abc.abstractmethod
    def insert(self, key: float, tid: TupleId) -> None:
        """Insert the mapping ``key -> tid``."""

    @abc.abstractmethod
    def delete(self, key: float, tid: TupleId) -> None:
        """Remove the mapping ``key -> tid`` if present."""

    @abc.abstractmethod
    def search(self, key: float) -> list[TupleId]:
        """Return all tuple identifiers stored under ``key``."""

    @abc.abstractmethod
    def range_search(self, key_range: KeyRange) -> list[TupleId]:
        """Return all tuple identifiers whose key lies in ``key_range``."""

    @abc.abstractmethod
    def memory_bytes(self) -> int:
        """Analytic size of the structure in bytes."""

    @property
    @abc.abstractmethod
    def num_entries(self) -> int:
        """Number of (key, tid) entries stored."""

    def range_search_many(self, ranges: Sequence[KeyRange]) -> list[TupleId]:
        """Union of :meth:`range_search` over several ranges."""
        results: list[TupleId] = []
        # repro: ignore[REP004] -- documented per-range fallback of the
        # abstract base; array-native indexes override with one pass
        for key_range in ranges:
            results.extend(self.range_search(key_range))
        return results

    # ------------------------------------------------------------- array API

    def search_many(self, keys: Sequence[float] | np.ndarray) -> np.ndarray:
        """Batched point probe: all tids stored under any of ``keys``.

        The default falls back to per-key :meth:`search`; hash and sorted
        indexes override it with a single-pass implementation.
        """
        flat: list[TupleId] = []
        # repro: ignore[REP004] -- documented per-key fallback of the
        # abstract base; hash and sorted indexes override with one pass
        for key in keys:
            flat.extend(self.search(float(key)))
        if not flat:
            return np.empty(0, dtype=np.int64)
        return np.asarray(flat)

    def range_search_array(self, key_range: KeyRange) -> np.ndarray:
        """Array-returning variant of :meth:`range_search`.

        The default materialises the scalar result; array-native indexes
        (``BPlusTree``, ``SortedColumnIndex``) override it to avoid per-tid
        Python object traffic.
        """
        results = self.range_search(key_range)
        if not results:
            return np.empty(0, dtype=np.int64)
        return np.asarray(results)

    def range_search_many_array(self, ranges: Sequence[KeyRange]) -> np.ndarray:
        """Union of :meth:`range_search_array` over several ranges.

        The result may contain duplicates when the ranges overlap; callers
        that need a set dedup with ``np.unique``.
        """
        arrays = [self.range_search_array(key_range) for key_range in ranges]
        arrays = [array for array in arrays if array.size]
        if not arrays:
            return np.empty(0, dtype=np.int64)
        if len(arrays) == 1:
            return arrays[0]
        return np.concatenate(arrays)

    def range_search_segmented(
        self, ranges: Sequence[KeyRange],
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-range results of :meth:`range_search_array` as one segmented array.

        Unlike :meth:`range_search_many_array` (which unions the ranges into
        a single flat array), the returned ``(values, offsets)`` pair keeps
        the per-range boundaries — range ``i`` owns
        ``values[offsets[i]:offsets[i + 1]]`` — which is what the batched
        query executor needs to answer B queries in O(1) array passes.  The
        default concatenates per-range array probes; ``SortedColumnIndex``
        overrides it with a fully vectorized double-searchsorted gather.
        """
        return concat_segments([self.range_search_array(key_range)
                                for key_range in ranges])

    def search_many_segmented(
        self, keys: np.ndarray, offsets: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Segmented :meth:`search_many`: one probe pass, boundaries kept.

        ``keys`` is a segmented array of point-probe keys (see
        ``repro.segments``); the result maps every segment to the
        concatenation of its keys' tid lists, with fresh offsets (a key may
        hit zero or several entries, so output segment sizes differ from
        input sizes).  This is the primary-index resolution step of the
        batched executor under logical pointers: one call resolves the
        candidate tids of a whole query batch.  The default loops one
        :meth:`search_many` per segment; ``BPlusTree`` overrides it with a
        single descent pass over the flat key array.
        """
        keys = np.asarray(keys)
        if keys.size == 0:
            return np.empty(0, dtype=np.int64), empty_offsets(offsets.size - 1)
        return concat_segments([
            self.search_many(keys[offsets[i]:offsets[i + 1]])
            for i in range(offsets.size - 1)
        ])

    def insert_many(self, keys: Sequence[float] | np.ndarray,
                    tids: Sequence[TupleId] | np.ndarray) -> None:
        """Batched write: insert every aligned ``keys[i] -> tids[i]`` pair.

        Unlike :meth:`bulk_load`, this is incremental maintenance — the index
        may already hold entries and keeps them.  The default falls back to a
        per-pair :meth:`insert` loop; array-native indexes override it with a
        sort-once merge so bulk writes cost one pass instead of one descent
        per key.
        """
        # repro: ignore[REP004] -- documented per-pair fallback of the
        # abstract base; array-native indexes override with a sorted merge
        for key, tid in zip(keys, tid_items(tids)):
            self.insert(float(key), tid)

    def bulk_load(self, pairs: Iterable[tuple[float, TupleId]]) -> None:
        """Insert many (key, tid) pairs; subclasses may override with a faster path."""
        for key, tid in pairs:
            self.insert(key, tid)
