"""Hash index.

Used in two places:

* as the engine's *primary index* when the workload only ever resolves primary
  keys to row locations (the logical-pointer scheme performs exactly this
  probe in Step 3 of Hermit's lookup), and
* as the implementation of the TRS-Tree leaf outlier buffers, which the paper
  describes as "a hash table mapping from m to the corresponding tuple's
  identifier".
"""

from __future__ import annotations

from collections import defaultdict
from itertools import chain
from typing import Iterator, Sequence

import numpy as np

from repro.errors import KeyNotFoundError, StorageError
from repro.index.base import Index, KeyRange, tid_items
from repro.storage.identifiers import TupleId
from repro.storage.memory import DEFAULT_SIZE_MODEL, SizeModel


class HashIndex(Index):
    """A non-unique hash index mapping keys to lists of tuple identifiers."""

    def __init__(self, size_model: SizeModel = DEFAULT_SIZE_MODEL) -> None:
        super().__init__()
        self._size_model = size_model
        self._buckets: dict[float, list[TupleId]] = defaultdict(list)
        self._num_entries = 0

    def insert(self, key: float, tid: TupleId) -> None:
        """Insert ``key -> tid``."""
        self.stats.inserts += 1
        self._buckets[key].append(tid)
        self._num_entries += 1

    def insert_many(self, keys: Sequence[float] | np.ndarray,
                    tids: Sequence[TupleId] | np.ndarray) -> None:
        """Batched insert: group by key, extend each bucket once.

        One argsort finds the equal-key runs, so a bucket receiving many
        tids is touched with a single ``extend`` instead of one dict probe
        and append per pair.
        """
        keys = np.asarray(keys, dtype=np.float64)
        items = tid_items(tids)
        if keys.size != len(items):
            raise StorageError("keys and tids must have equal length")
        count = int(keys.size)
        if count == 0:
            return
        self.stats.inserts += count
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        run_starts = np.concatenate(
            [[0], np.flatnonzero(np.diff(sorted_keys)) + 1]
        )
        run_stops = np.concatenate([run_starts[1:], [count]])
        positions = order.tolist()
        buckets = self._buckets
        # repro: ignore[REP004] -- iterates distinct-key runs, not elements;
        # bucket dicts have no array form to extend in one pass
        for start, stop in zip(run_starts.tolist(), run_stops.tolist()):
            buckets[float(sorted_keys[start])].extend(
                items[positions[index]] for index in range(start, stop)
            )
        self._num_entries += count

    def delete(self, key: float, tid: TupleId) -> None:
        """Remove one occurrence of ``key -> tid``.

        Raises:
            KeyNotFoundError: If the pair is absent.
        """
        self.stats.deletes += 1
        tids = self._buckets.get(key)
        if not tids:
            raise KeyNotFoundError(f"key {key!r} is not in the index")
        try:
            tids.remove(tid)
        except ValueError:
            raise KeyNotFoundError(
                f"tid {tid!r} is not stored under key {key!r}"
            ) from None
        if not tids:
            del self._buckets[key]
        self._num_entries -= 1

    def search(self, key: float) -> list[TupleId]:
        """Return all tuple ids stored under ``key``."""
        self.stats.lookups += 1
        return list(self._buckets.get(key, ()))

    def search_many(self, keys: Sequence[float] | np.ndarray) -> np.ndarray:
        """Batched point probe: one dict access per key, one final conversion.

        Used by the vectorized Hermit lookup to resolve a whole candidate
        batch of logical pointers through the primary index without a Python
        ``list.extend`` per key.
        """
        keys = [float(key) for key in keys]
        self.stats.lookups += len(keys)
        buckets = self._buckets
        runs = [buckets[key] for key in keys if key in buckets]
        flat = list(chain.from_iterable(runs))
        if not flat:
            return np.empty(0, dtype=np.int64)
        return np.asarray(flat)

    def range_search(self, key_range: KeyRange) -> list[TupleId]:
        """Return all tuple ids whose key falls in ``key_range``.

        A hash index has no key order, so this is a full bucket scan; it
        exists only to satisfy the common interface (the engine never routes
        range predicates to a hash index).
        """
        self.stats.range_lookups += 1
        results: list[TupleId] = []
        for key, tids in self._buckets.items():
            if key_range.contains(key):
                results.extend(tids)
        return results

    def items(self) -> Iterator[tuple[float, TupleId]]:
        """Iterate all (key, tid) pairs in arbitrary order."""
        for key, tids in self._buckets.items():
            for tid in tids:
                yield key, tid

    @property
    def num_entries(self) -> int:
        """Number of (key, tid) entries stored."""
        return self._num_entries

    @property
    def num_keys(self) -> int:
        """Number of distinct keys."""
        return len(self._buckets)

    def memory_bytes(self) -> int:
        """Analytic size in bytes."""
        return self._size_model.hash_table_bytes(self._num_entries)
