"""Unit tests for the leaf regression machinery."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.regression import (
    LinearModel,
    epsilon_for_error_bound,
    fit_leaf_model,
    fit_linear,
    fit_linear_trimmed,
)
from repro.index.base import KeyRange


class TestFitLinear:
    def test_recovers_exact_line(self):
        m = np.linspace(0, 100, 200)
        n = 3.0 * m - 7.0
        beta, alpha = fit_linear(m, n)
        assert beta == pytest.approx(3.0)
        assert alpha == pytest.approx(-7.0)

    def test_negative_slope(self):
        m = np.linspace(0, 10, 50)
        beta, alpha = fit_linear(m, -2.0 * m + 5.0)
        assert beta == pytest.approx(-2.0)
        assert alpha == pytest.approx(5.0)

    def test_degenerate_inputs(self):
        assert fit_linear(np.array([]), np.array([])) == (0.0, 0.0)
        assert fit_linear(np.array([3.0]), np.array([9.0])) == (0.0, 9.0)
        beta, alpha = fit_linear(np.array([2.0, 2.0, 2.0]), np.array([1.0, 2.0, 3.0]))
        assert beta == 0.0
        assert alpha == pytest.approx(2.0)

    @settings(max_examples=50, deadline=None)
    @given(st.floats(-100, 100), st.floats(-1000, 1000))
    def test_recovers_arbitrary_lines(self, slope, intercept):
        m = np.linspace(-50, 50, 101)
        beta, alpha = fit_linear(m, slope * m + intercept)
        assert beta == pytest.approx(slope, abs=1e-6)
        assert alpha == pytest.approx(intercept, abs=1e-4)


class TestTrimmedFit:
    def test_ignores_gross_outliers(self):
        rng = np.random.default_rng(0)
        m = np.linspace(0, 1000, 500)
        n = 2.0 * m + 10.0
        corrupted = n.copy()
        noisy_positions = rng.choice(500, size=25, replace=False)
        corrupted[noisy_positions] += 1e6
        plain_beta, plain_alpha = fit_linear(m, corrupted)
        robust_beta, robust_alpha = fit_linear_trimmed(m, corrupted, 0.1)
        assert abs(robust_beta - 2.0) < abs(plain_beta - 2.0)
        assert robust_beta == pytest.approx(2.0, rel=1e-3)
        assert robust_alpha == pytest.approx(10.0, abs=1.0)

    def test_no_trim_on_tiny_inputs(self):
        m = np.array([0.0, 1.0, 2.0])
        n = np.array([0.0, 2.0, 4.0])
        assert fit_linear_trimmed(m, n, 0.1) == fit_linear(m, n)

    def test_zero_fraction_is_plain_ols(self):
        m = np.linspace(0, 10, 100)
        n = m * 5
        assert fit_linear_trimmed(m, n, 0.0) == fit_linear(m, n)


class TestEpsilon:
    def test_formula(self):
        # eps = |beta| * width * error_bound / (2 n)
        eps = epsilon_for_error_bound(2.0, KeyRange(0.0, 1000.0), 100, 2.0)
        assert eps == pytest.approx(2.0 * 1000.0 * 2.0 / 200.0)

    def test_zero_cases(self):
        assert epsilon_for_error_bound(2.0, KeyRange(0, 10), 0, 2.0) == 0.0
        assert epsilon_for_error_bound(0.0, KeyRange(0, 10), 5, 2.0) == 0.0
        assert epsilon_for_error_bound(2.0, KeyRange(0, 10), 5, 0.0) == 0.0

    def test_negative_slope_uses_absolute_value(self):
        assert epsilon_for_error_bound(-2.0, KeyRange(0, 10), 5, 1.0) > 0

    def test_larger_error_bound_gives_larger_epsilon(self):
        small = epsilon_for_error_bound(1.0, KeyRange(0, 100), 50, 1.0)
        large = epsilon_for_error_bound(1.0, KeyRange(0, 100), 50, 100.0)
        assert large > small


class TestLinearModel:
    def test_covers_and_predict(self):
        model = LinearModel(beta=2.0, alpha=1.0, epsilon=0.5)
        assert model.predict(3.0) == 7.0
        assert model.covers(3.0, 7.4)
        assert not model.covers(3.0, 7.6)

    def test_covers_many_vectorised(self):
        model = LinearModel(beta=1.0, alpha=0.0, epsilon=0.1)
        m = np.array([1.0, 2.0, 3.0])
        n = np.array([1.05, 2.5, 3.0])
        assert list(model.covers_many(m, n)) == [True, False, True]

    def test_host_range_positive_slope(self):
        model = LinearModel(beta=2.0, alpha=0.0, epsilon=1.0)
        host = model.host_range(KeyRange(1.0, 3.0))
        # Bounds carry a two-ulp outward pad (see regression.band_range).
        assert host.low == pytest.approx(1.0)
        assert host.high == pytest.approx(7.0)
        assert host.low <= 1.0 and host.high >= 7.0

    def test_host_range_negative_slope(self):
        model = LinearModel(beta=-2.0, alpha=0.0, epsilon=1.0)
        host = model.host_range(KeyRange(1.0, 3.0))
        assert host.low == pytest.approx(-7.0)
        assert host.high == pytest.approx(-1.0)
        assert host.low <= -7.0 and host.high >= -1.0


class TestFitLeafModel:
    def test_epsilon_attached(self):
        m = np.linspace(0, 100, 1000)
        model = fit_leaf_model(m, 2 * m, KeyRange(0, 100), error_bound=2.0)
        assert model.beta == pytest.approx(2.0)
        assert model.epsilon == pytest.approx(2.0 * 100 * 2.0 / 2000.0)

    def test_point_probe_false_positives_match_error_bound(self):
        """The defining property of error_bound (Section 4.5).

        With uniformly distributed host values, the expected number of host
        values inside the range returned for a point probe should be close to
        the configured error_bound.
        """
        rng = np.random.default_rng(3)
        count = 20_000
        m = rng.uniform(0, 1000, size=count)
        n = 5.0 * m + 3.0
        error_bound = 50.0
        model = fit_leaf_model(m, n, KeyRange(0, 1000), error_bound)
        probes = rng.uniform(100, 900, size=50)
        covered_counts = []
        for probe in probes:
            host = model.host_range(KeyRange(probe, probe))
            covered_counts.append(int(((n >= host.low) & (n <= host.high)).sum()))
        average = float(np.mean(covered_counts))
        assert average == pytest.approx(error_bound, rel=0.3)
