"""Unit tests for the hash, composite and paged B+-tree indexes."""

import numpy as np
import pytest

from repro.errors import KeyNotFoundError
from repro.index.base import KeyRange
from repro.index.composite import CompositeIndex
from repro.index.hash_index import HashIndex
from repro.index.paged_bptree import PagedBPlusTree
from repro.storage.buffer_pool import BufferPool
from repro.storage.disk import DiskManager


class TestHashIndex:
    def test_insert_search(self):
        index = HashIndex()
        index.insert(1.5, "a")
        index.insert(1.5, "b")
        assert sorted(index.search(1.5)) == ["a", "b"]
        assert index.search(2.0) == []
        assert index.num_entries == 2
        assert index.num_keys == 1

    def test_delete(self):
        index = HashIndex()
        index.insert(1.0, 10)
        index.delete(1.0, 10)
        assert index.search(1.0) == []
        with pytest.raises(KeyNotFoundError):
            index.delete(1.0, 10)
        index.insert(2.0, 1)
        with pytest.raises(KeyNotFoundError):
            index.delete(2.0, 99)

    def test_range_search_scans_buckets(self):
        index = HashIndex()
        for i in range(10):
            index.insert(float(i), i)
        assert sorted(index.range_search(KeyRange(2.0, 4.0))) == [2, 3, 4]

    def test_memory_scales(self):
        index = HashIndex()
        empty = index.memory_bytes()
        for i in range(100):
            index.insert(float(i), i)
        assert index.memory_bytes() > empty

    def test_items(self):
        index = HashIndex()
        index.insert(1.0, "x")
        assert list(index.items()) == [(1.0, "x")]


class TestCompositeIndex:
    def test_range_search_filters_both_keys(self):
        index = CompositeIndex()
        for a in range(10):
            for b in range(10):
                index.insert(float(a), float(b), a * 10 + b)
        result = index.range_search(KeyRange(2, 3), KeyRange(5, 6))
        assert sorted(result) == [25, 26, 35, 36]

    def test_range_search_many(self):
        index = CompositeIndex()
        for a in range(5):
            index.insert(float(a), float(a), a)
        result = index.range_search_many(KeyRange(0, 4),
                                         [KeyRange(0, 1), KeyRange(3, 3)])
        assert sorted(result) == [0, 1, 3]

    def test_delete(self):
        index = CompositeIndex()
        index.insert(1.0, 2.0, "x")
        index.delete(1.0, 2.0, "x")
        assert index.num_entries == 0
        with pytest.raises(KeyNotFoundError):
            index.delete(1.0, 2.0, "x")

    def test_memory_scales(self):
        index = CompositeIndex()
        empty = index.memory_bytes()
        for i in range(200):
            index.insert(float(i), float(i), i)
        assert index.memory_bytes() > empty


class TestPagedBPlusTree:
    @pytest.fixture
    def tree(self):
        return PagedBPlusTree(BufferPool(DiskManager(), capacity=256),
                              node_capacity=8)

    def test_insert_and_point_search(self, tree):
        for i in range(300):
            tree.insert(float(i), i)
        assert tree.search(123.0) == [123]
        assert tree.search(1e9) == []
        assert tree.num_entries == 300
        assert tree.height >= 2
        assert tree.num_nodes > 1

    def test_range_search_matches_reference(self, tree):
        rng = np.random.default_rng(1)
        keys = rng.integers(0, 500, size=400)
        for i, key in enumerate(keys):
            tree.insert(float(key), i)
        expected = sorted(i for i, key in enumerate(keys) if 100 <= key <= 200)
        assert sorted(tree.range_search(KeyRange(100.0, 200.0))) == expected

    def test_delete(self, tree):
        tree.insert(1.0, 10)
        tree.insert(1.0, 11)
        tree.delete(1.0, 10)
        assert tree.search(1.0) == [11]
        with pytest.raises(KeyNotFoundError):
            tree.delete(1.0, 99)
        with pytest.raises(KeyNotFoundError):
            tree.delete(5.0, 1)

    def test_duplicate_keys(self, tree):
        for i in range(20):
            tree.insert(7.0, i)
        assert sorted(tree.search(7.0)) == list(range(20))

    def test_items_sorted(self, tree):
        rng = np.random.default_rng(2)
        keys = rng.uniform(0, 100, size=200)
        for i, key in enumerate(keys):
            tree.insert(float(key), i)
        listed = [key for key, _ in tree.items()]
        assert listed == sorted(listed)
        assert len(listed) == 200

    def test_page_traffic_is_charged(self):
        disk = DiskManager()
        pool = BufferPool(disk, capacity=4)
        tree = PagedBPlusTree(pool, node_capacity=8)
        for i in range(500):
            tree.insert(float(i), i)
        tree.range_search(KeyRange(0.0, 499.0))
        # With only 4 frames, a tree of many nodes must have gone to disk.
        assert disk.stats.page_reads > 0
        assert tree.disk_bytes() == tree.num_nodes * disk.page_size

    def test_survives_eviction_pressure(self):
        pool = BufferPool(DiskManager(), capacity=3)
        tree = PagedBPlusTree(pool, node_capacity=4)
        for i in range(200):
            tree.insert(float(i), i)
        assert sorted(tree.range_search(KeyRange(0.0, 199.0))) == list(range(200))
