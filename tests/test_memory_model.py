"""Unit tests for the analytic memory model."""

import pytest

from repro.storage.memory import BYTES_PER_MB, MemoryReport, SizeModel


class TestSizeModel:
    def test_btree_scales_with_entries(self):
        model = SizeModel()
        small = model.btree_bytes(1_000)
        large = model.btree_bytes(100_000)
        assert large > small
        # Per-entry cost should be roughly key + pointer plus node overheads.
        assert large / 100_000 >= model.key_bytes + model.pointer_bytes

    def test_btree_empty_is_header_only(self):
        model = SizeModel()
        assert model.btree_bytes(0) == model.node_header_bytes

    def test_hash_table_scales_with_entries(self):
        model = SizeModel()
        assert model.hash_table_bytes(10) < model.hash_table_bytes(1000)
        assert model.hash_table_bytes(0) == model.node_header_bytes

    def test_trs_leaf_much_smaller_than_btree_for_same_data(self):
        model = SizeModel()
        # One leaf modelling 1M tuples with 1% outliers vs a complete B+-tree.
        leaf = model.trs_leaf_bytes(num_outliers=10_000)
        btree = model.btree_bytes(1_000_000)
        assert leaf < btree / 10

    def test_table_bytes(self):
        model = SizeModel()
        assert model.table_bytes(100, 32) == model.node_header_bytes + 3200

    def test_trs_internal_bytes_depends_on_fanout(self):
        model = SizeModel()
        assert model.trs_internal_bytes(16) > model.trs_internal_bytes(4)


class TestMemoryReport:
    def test_add_and_total(self):
        report = MemoryReport()
        report.add("table", 10 * BYTES_PER_MB)
        report.add("index", 30 * BYTES_PER_MB)
        report.add("index", 10 * BYTES_PER_MB)
        assert report.total_mb == pytest.approx(50.0)
        assert report.fraction("index") == pytest.approx(0.8)

    def test_fraction_of_missing_label_is_zero(self):
        report = MemoryReport()
        report.add("table", 100)
        assert report.fraction("other") == 0.0

    def test_fraction_with_empty_report(self):
        assert MemoryReport().fraction("x") == 0.0

    def test_merged_combines_components(self):
        first = MemoryReport({"a": 10})
        second = MemoryReport({"a": 5, "b": 1})
        merged = first.merged(second)
        assert merged.components == {"a": 15, "b": 1}
        # Originals untouched.
        assert first.components == {"a": 10}

    def test_repr_contains_total(self):
        report = MemoryReport({"a": int(2 * BYTES_PER_MB)})
        assert "total" in repr(report)
