"""Fixture tests: every lint rule fires on a violation and stays quiet
on the closest legitimate variant (the near-miss)."""

from __future__ import annotations

import textwrap

from repro.analysis import Module, analyze_modules
from repro.analysis.rules import (
    BroadExceptRationale,
    DurabilityOrdering,
    EpochDiscipline,
    FlatViewInvalidation,
    HotPathPurity,
    ResultCacheDiscipline,
    ShardingProtocolHygiene,
)


def findings_for(source: str, rule, path: str = "fixture.py"):
    module = Module.from_source(textwrap.dedent(source), path)
    return analyze_modules([module], rules=[rule])


class TestFlatViewInvalidation:
    RULE = FlatViewInvalidation

    def test_fires_on_mutator_without_clear(self):
        findings = findings_for("""
            class Buffer:
                def __init__(self):
                    self._entries = {}
                    self._count = 0
                    self._flat_view = None

                def add(self, key, tid):
                    self._entries[key] = tid
                    self._count += 1
        """, self.RULE())
        assert [f.rule for f in findings] == ["REP001"]
        assert "Buffer.add" in findings[0].message

    def test_quiet_when_mutator_clears(self):
        findings = findings_for("""
            class Buffer:
                def __init__(self):
                    self._entries = {}
                    self._count = 0
                    self._flat_view = None

                def add(self, key, tid):
                    self._entries[key] = tid
                    self._count += 1
                    self._flat_view = None
        """, self.RULE())
        assert findings == []

    def test_fires_on_container_method_mutation(self):
        findings = findings_for("""
            class Buffer:
                def __init__(self):
                    self._sorted_keys = []
                    self._flat_view = None

                def drop_all(self):
                    self._sorted_keys.clear()
        """, self.RULE())
        assert [f.rule for f in findings] == ["REP001"]

    def test_quiet_without_flat_view_cache(self):
        # A class with no _flat_view in __init__ is out of scope even if
        # it mutates identically named state.
        findings = findings_for("""
            class Plain:
                def __init__(self):
                    self._entries = {}

                def add(self, key, tid):
                    self._entries[key] = tid
        """, self.RULE())
        assert findings == []

    def test_quiet_on_readers(self):
        findings = findings_for("""
            class Buffer:
                def __init__(self):
                    self._entries = {}
                    self._flat_view = None

                def lookup(self, key):
                    return self._entries.get(key)
        """, self.RULE())
        assert findings == []


class TestDurabilityOrdering:
    RULE = DurabilityOrdering

    def test_fires_on_apply_before_log(self):
        findings = findings_for("""
            class Database:
                def delete(self, table_name, location):
                    entry = self.catalog.table_entry(table_name)
                    row = entry.table.fetch(location)
                    entry.table.delete(location)
                    self._durability.log_delete(table_name, location)
        """, self.RULE())
        assert [f.rule for f in findings] == ["REP002"]
        assert "'delete'" in findings[0].message

    def test_fires_on_log_without_validation(self):
        findings = findings_for("""
            class Database:
                def insert_many(self, table_name, columns):
                    self._durability.log_insert_many(table_name, columns)
                    return self.table.insert_many(columns)
        """, self.RULE())
        assert [f.rule for f in findings] == ["REP002"]
        assert "without validating" in findings[0].message

    def test_quiet_on_validate_log_apply(self):
        findings = findings_for("""
            class Database:
                def insert_many(self, table_name, columns):
                    table = self.catalog.table_entry(table_name).table
                    if table.validate_insert_many(columns) > 0:
                        self._durability.log_insert_many(table_name, columns)
                    return table.insert_many(columns)
        """, self.RULE())
        assert findings == []

    def test_quiet_on_raise_guard_as_validation(self):
        findings = findings_for("""
            class Database:
                def create_table(self, schema):
                    if schema.name in self.catalog:
                        raise ValueError("exists")
                    self._durability.log_create_table(schema)
                    self.catalog.add_table(schema.name)
        """, self.RULE())
        assert findings == []

    def test_quiet_without_logging(self):
        findings = findings_for("""
            class Database:
                def insert_many(self, table_name, columns):
                    return self.table.insert_many(columns)
        """, self.RULE())
        assert findings == []


class TestEpochDiscipline:
    RULE = EpochDiscipline

    def test_fires_on_unlocked_catalog_access(self):
        findings = findings_for("""
            class Database:
                def __init__(self):
                    self.epochs = EpochManager()

                def table(self, name):
                    return self.catalog.table_entry(name).table
        """, self.RULE())
        assert [f.rule for f in findings] == ["REP003"]
        assert "outside the epoch protocol" in findings[0].message

    def test_quiet_under_read_side(self):
        findings = findings_for("""
            class Database:
                def __init__(self):
                    self.epochs = EpochManager()

                def table(self, name):
                    with self.epochs.read():
                        return self.catalog.table_entry(name).table
        """, self.RULE())
        assert findings == []

    def test_fires_on_mutation_under_read(self):
        findings = findings_for("""
            class Database:
                def __init__(self):
                    self.epochs = EpochManager()

                def sneaky(self, name):
                    with self.epochs.read():
                        self.catalog.bump_data_epoch(name)
        """, self.RULE())
        assert [f.rule for f in findings] == ["REP003"]
        assert "shared (read) side" in findings[0].message

    def test_quiet_on_mutation_under_write(self):
        findings = findings_for("""
            class Database:
                def __init__(self):
                    self.epochs = EpochManager()

                def bump(self, name):
                    with self.epochs.write():
                        self.catalog.bump_data_epoch(name)
        """, self.RULE())
        assert findings == []

    def test_fires_on_static_upgrade(self):
        findings = findings_for("""
            class Database:
                def __init__(self):
                    self.epochs = EpochManager()

                def upgrade(self, name):
                    with self.epochs.read():
                        with self.epochs.write():
                            self.catalog.bump_data_epoch(name)
        """, self.RULE())
        rules = [f.rule for f in findings]
        assert "REP003" in rules
        assert any("upgrade" in f.message for f in findings)

    def test_private_helpers_may_rely_on_caller_lock(self):
        findings = findings_for("""
            class Database:
                def __init__(self):
                    self.epochs = EpochManager()

                def _helper(self, name):
                    return self.catalog.table_entry(name)
        """, self.RULE())
        assert findings == []

    def test_quiet_on_classes_without_epochs(self):
        findings = findings_for("""
            class ShardedDatabase:
                def __init__(self):
                    self.shards = []

                def table(self, name):
                    return self.catalog.table_entry(name).table
        """, self.RULE())
        assert findings == []


class TestHotPathPurity:
    RULE = HotPathPurity

    def test_fires_in_marked_module(self):
        findings = findings_for("""
            # repro: hot-module
            def concat(arrays):
                out = []
                for array in arrays:
                    out.extend(array.tolist())
                return out
        """, self.RULE())
        assert [f.rule for f in findings] == ["REP004"]

    def test_fires_on_tolist_loop_in_index_many_method(self):
        findings = findings_for("""
            class Index:
                def search_many(self, keys):
                    out = []
                    for key in keys.tolist():
                        out.append(self.search(key))
                    return out
        """, self.RULE(), path="src/repro/index/fake.py")
        assert [f.rule for f in findings] == ["REP004"]

    def test_quiet_on_scalar_methods_in_index_modules(self):
        findings = findings_for("""
            class Index:
                def search(self, key):
                    for node in self._path_to(key):
                        pass
        """, self.RULE(), path="src/repro/index/fake.py")
        assert findings == []

    def test_quiet_on_comprehensions(self):
        # A single C-level comprehension is the materialisation boundary,
        # not a per-element pipeline.
        findings = findings_for("""
            # repro: hot-module
            def split(values, offsets):
                return [values[offsets[i]:offsets[i + 1]]
                        for i in range(offsets.size - 1)]
        """, self.RULE())
        assert findings == []

    def test_quiet_outside_hot_scope(self):
        findings = findings_for("""
            def report(rows):
                for row in rows.tolist():
                    print(row)
        """, self.RULE(), path="src/repro/bench/fake.py")
        assert findings == []

    def test_suppression_with_rationale_accepted(self):
        findings = findings_for("""
            class Index:
                def search_many(self, keys):
                    out = []
                    # repro: ignore[REP004] -- documented scalar fallback
                    for key in keys.tolist():
                        out.append(self.search(key))
                    return out
        """, self.RULE(), path="src/repro/index/fake.py")
        assert findings == []


class TestShardingProtocolHygiene:
    RULE = ShardingProtocolHygiene

    DISPATCHER = """
        def dispatch_command(database, command, payload):
            if command == "insert_many":
                return database.insert_many(*payload)
            if command == "fetch":
                return database.table(payload[0]).fetch(payload[1])
            raise ValueError(command)

        def shard_worker_main(connection):
            while True:
                command, payload = connection.recv()
                if command == "close":
                    break
    """

    def _modules(self, router_source: str):
        dispatcher = Module.from_source(
            textwrap.dedent(self.DISPATCHER),
            "src/repro/sharding/worker.py",
        )
        router = Module.from_source(
            textwrap.dedent(router_source),
            "src/repro/sharding/sharded.py",
        )
        return [dispatcher, router]

    def test_fires_on_unregistered_command(self):
        findings = analyze_modules(
            self._modules("""
                class Router:
                    def go(self):
                        self._broadcast("compact", None)
            """),
            rules=[self.RULE()],
        )
        assert [f.rule for f in findings] == ["REP005"]
        assert "'compact'" in findings[0].message

    def test_quiet_on_registered_commands(self):
        findings = analyze_modules(
            self._modules("""
                class Router:
                    def go(self, shard):
                        self._broadcast("insert_many", None)
                        self._call(0, "fetch", (1, 2))
                        shard.send(("close", None))
            """),
            rules=[self.RULE()],
        )
        assert findings == []

    def test_reply_envelope_is_exempt(self):
        findings = analyze_modules(
            self._modules("""
                class Worker:
                    def reply(self, connection, result):
                        connection.send(("ok", result))
                        connection.send(("error", result))
            """),
            rules=[self.RULE()],
        )
        assert findings == []

    def test_quiet_without_visible_dispatcher(self):
        # A lone router file can't be judged: no dispatcher in view.
        router = Module.from_source(
            textwrap.dedent("""
                class Router:
                    def go(self):
                        self._broadcast("compact", None)
            """),
            "src/repro/sharding/sharded.py",
        )
        assert analyze_modules([router], rules=[self.RULE()]) == []

    def test_non_sharding_sends_out_of_scope(self):
        module = Module.from_source(
            'def notify(queue):\n    queue.send("anything")\n',
            "src/repro/serving/fake.py",
        )
        dispatcher = Module.from_source(
            textwrap.dedent(self.DISPATCHER),
            "src/repro/sharding/worker.py",
        )
        assert analyze_modules([dispatcher, module],
                               rules=[self.RULE()]) == []


class TestBroadExceptRationale:
    RULE = BroadExceptRationale

    def test_fires_on_bare_except(self):
        findings = findings_for("""
            try:
                risky()
            except:
                pass
        """, self.RULE())
        assert [f.rule for f in findings] == ["REP006"]

    def test_fires_on_except_exception(self):
        findings = findings_for("""
            try:
                risky()
            except Exception as error:
                log(error)
        """, self.RULE())
        assert [f.rule for f in findings] == ["REP006"]

    def test_fires_on_noqa_without_rationale(self):
        findings = findings_for("""
            try:
                risky()
            except Exception:  # noqa: BLE001
                pass
        """, self.RULE())
        assert [f.rule for f in findings] == ["REP006"]

    def test_quiet_with_noqa_rationale(self):
        findings = findings_for("""
            try:
                risky()
            except BaseException as error:  # noqa: BLE001 - ship to router
                send(error)
        """, self.RULE())
        assert findings == []

    def test_quiet_on_narrow_handlers(self):
        findings = findings_for("""
            try:
                risky()
            except (ValueError, OSError):
                pass
        """, self.RULE())
        assert findings == []

    def test_repro_suppression_also_accepted(self):
        findings = findings_for("""
            try:
                risky()
            except Exception:  # repro: ignore[REP006] -- fixture boundary
                pass
        """, self.RULE())
        assert findings == []


class TestResultCacheDiscipline:
    RULE = ResultCacheDiscipline

    SCOPE_INIT = """
                def __init__(self):
                    import threading
                    self._lock = threading.Lock()
                    self._entries = {}
                    self._hits = 0
    """

    def test_fires_on_unlocked_mutator(self):
        findings = findings_for("""
            class Cache:
                def __init__(self):
                    import threading
                    self._lock = threading.Lock()
                    self._entries = {}
                    self._hits = 0

                def record(self, key, value):
                    self._entries[key] = value
                    self._hits += 1
        """, self.RULE())
        assert [f.rule for f in findings] == ["REP007"]
        assert "Cache.record" in findings[0].message
        assert "_entries" in findings[0].message

    def test_quiet_when_lock_held(self):
        findings = findings_for("""
            class Cache:
                def __init__(self):
                    import threading
                    self._lock = threading.Lock()
                    self._entries = {}
                    self._hits = 0

                def record(self, key, value):
                    with self._lock:
                        self._entries[key] = value
                        self._hits += 1
        """, self.RULE())
        assert findings == []

    def test_quiet_under_epoch_write_side(self):
        findings = findings_for("""
            class Cache:
                def __init__(self, epochs):
                    import threading
                    self.epochs = epochs
                    self._lock = threading.Lock()
                    self._entries = {}

                def rebuild(self):
                    with self.epochs.write():
                        self._entries.clear()
        """, self.RULE())
        assert findings == []

    def test_quiet_on_locked_suffixed_helper(self):
        # The _locked suffix is the contract "caller already holds the
        # lock" — the helper itself is exempt.
        findings = findings_for("""
            class Cache:
                def __init__(self):
                    import threading
                    self._lock = threading.Lock()
                    self._entries = {}

                def _remove_locked(self, key):
                    del self._entries[key]
        """, self.RULE())
        assert findings == []

    def test_fires_on_container_method_mutation(self):
        findings = findings_for("""
            class Cache:
                def __init__(self):
                    import threading
                    self._lock = threading.Lock()
                    self._entries = {}
                    self._seen = set()

                def note(self, key):
                    self._seen.add(key)
        """, self.RULE())
        assert [f.rule for f in findings] == ["REP007"]
        assert "_seen" in findings[0].message

    def test_quiet_without_lock_in_scope(self):
        # A class owning entries but no lock (the B+-tree shape) is out
        # of scope — REP001 covers its invariant instead.
        findings = findings_for("""
            class Tree:
                def __init__(self):
                    self._entries = {}

                def add(self, key, value):
                    self._entries[key] = value
        """, self.RULE())
        assert findings == []

    def test_quiet_on_readers(self):
        findings = findings_for("""
            class Cache:
                def __init__(self):
                    import threading
                    self._lock = threading.Lock()
                    self._entries = {}

                def lookup(self, key):
                    return self._entries.get(key)
        """, self.RULE())
        assert findings == []
