"""Unit tests for the Synthetic, Stock and Sensor workload generators."""

import numpy as np
import pytest

from repro.correlation.discovery import pearson_coefficient, spearman_coefficient
from repro.engine.catalog import IndexMethod
from repro.engine.database import Database
from repro.engine.query import RangePredicate
from repro.workloads.queries import mixed_queries, point_queries, range_queries
from repro.workloads.sensor import generate_sensor, load_sensor, sensor_column
from repro.workloads.stock import (
    dow_sp_series,
    generate_stock,
    high_column,
    load_stock,
    low_column,
)
from repro.workloads.synthetic import correlation_for, generate_synthetic, load_synthetic


class TestSyntheticWorkload:
    def test_linear_correlation_holds_outside_noise(self):
        dataset = generate_synthetic(5000, "linear", noise_fraction=0.05)
        clean = ~dataset.noise_mask
        col_b = dataset.columns["colB"][clean]
        col_c = dataset.columns["colC"][clean]
        assert np.allclose(col_b, 2.0 * col_c + 10.0)
        assert dataset.noise_mask.sum() == pytest.approx(250, abs=1)

    def test_sigmoid_correlation_is_monotonic(self):
        dataset = generate_synthetic(3000, "sigmoid", noise_fraction=0.0)
        order = np.argsort(dataset.columns["colC"])
        sorted_b = dataset.columns["colB"][order]
        assert np.all(np.diff(sorted_b) >= -1e-9)
        assert spearman_coefficient(dataset.columns["colC"],
                                    dataset.columns["colB"]) > 0.99

    def test_unknown_correlation_rejected(self):
        with pytest.raises(ValueError):
            correlation_for("cubic")
        with pytest.raises(ValueError):
            generate_synthetic(10, "cubic")

    def test_determinism(self):
        first = generate_synthetic(100, "linear", seed=3)
        second = generate_synthetic(100, "linear", seed=3)
        assert np.array_equal(first.columns["colC"], second.columns["colC"])
        assert np.array_equal(first.columns["colB"], second.columns["colB"])

    def test_load_creates_preexisting_index(self):
        database = Database()
        table_name = load_synthetic(database, generate_synthetic(500, "linear"))
        entries = database.catalog.indexes_on(table_name)
        assert len(entries) == 1
        assert entries[0].is_preexisting
        assert entries[0].column == "colB"
        assert database.table(table_name).num_rows == 500

    def test_extra_correlated_columns(self):
        database = Database()
        dataset = generate_synthetic(500, "linear")
        table_name = load_synthetic(database, dataset, extra_correlated_columns=3)
        table = database.table(table_name)
        assert "colE2" in table.schema
        correlation = pearson_coefficient(table.column_array("colE0"),
                                          table.column_array("colB"))
        assert abs(correlation) > 0.99


class TestStockWorkload:
    def test_low_high_near_linear_with_outliers(self):
        dataset = generate_stock(num_stocks=3, num_days=2000,
                                 shock_probability=0.01)
        lows = dataset.columns[low_column(0)]
        highs = dataset.columns[high_column(0)]
        assert pearson_coefficient(lows, highs) > 0.95
        # Shock days produce violations of the usual few-percent spread.
        ratio = highs / lows
        assert (ratio > 1.3).sum() > 0
        assert dataset.num_tuples == 2000

    def test_all_prices_positive(self):
        dataset = generate_stock(num_stocks=2, num_days=500)
        for stock in range(2):
            assert np.all(dataset.columns[low_column(stock)] > 0)
            assert np.all(dataset.columns[high_column(stock)] > 0)

    def test_load_builds_one_index_per_low_column(self):
        database = Database()
        dataset = generate_stock(num_stocks=4, num_days=300)
        table_name = load_stock(database, dataset)
        entries = database.catalog.indexes_on(table_name)
        assert len(entries) == 4
        assert all(entry.is_preexisting for entry in entries)
        assert database.table(table_name).num_rows == 300

    def test_hermit_on_high_column_answers_queries(self):
        database = Database()
        dataset = generate_stock(num_stocks=2, num_days=1000)
        table_name = load_stock(database, dataset)
        database.create_index("idx_high_0", table_name, high_column(0),
                              method=IndexMethod.AUTO)
        highs = dataset.columns[high_column(0)]
        low, high = np.quantile(highs, [0.4, 0.6])
        result = database.query(table_name,
                                RangePredicate(high_column(0), low, high))
        expected = set(np.flatnonzero((highs >= low) & (highs <= high)))
        assert set(result.locations) == expected

    def test_dow_sp_series_are_correlated(self):
        sp500, dow = dow_sp_series(2000)
        assert len(sp500) == len(dow) == 2000
        assert pearson_coefficient(sp500, dow) > 0.9


class TestSensorWorkload:
    def test_sensor_average_correlation_is_monotonic_nonlinear(self):
        dataset = generate_sensor(num_tuples=5000, noise_scale=0.5,
                                  glitch_fraction=0.0)
        average = dataset.columns["average"]
        reading = dataset.columns[sensor_column(0)]
        assert spearman_coefficient(average, reading) > 0.95
        # Non-linearity: adding a quadratic term to a straight-line fit
        # reduces the residual noticeably, i.e. the correlation has genuine
        # curvature for the TRS-Tree to chase.
        linear_residual = reading - np.polyval(np.polyfit(average, reading, 1),
                                               average)
        quadratic_residual = reading - np.polyval(np.polyfit(average, reading, 2),
                                                  average)
        linear_rms = float(np.sqrt((linear_residual ** 2).mean()))
        quadratic_rms = float(np.sqrt((quadratic_residual ** 2).mean()))
        assert quadratic_rms < 0.9 * linear_rms

    def test_average_is_row_mean(self):
        dataset = generate_sensor(num_tuples=100)
        readings = np.vstack([dataset.columns[sensor_column(i)]
                              for i in range(dataset.num_sensors)])
        assert np.allclose(dataset.columns["average"], readings.mean(axis=0))

    def test_load_creates_average_index(self):
        database = Database()
        table_name = load_sensor(database, generate_sensor(num_tuples=500))
        entries = database.catalog.indexes_on(table_name)
        assert [entry.column for entry in entries] == ["average"]

    def test_hermit_on_sensor_column(self):
        database = Database()
        dataset = generate_sensor(num_tuples=3000, noise_scale=0.5)
        table_name = load_sensor(database, dataset)
        database.create_index("idx_s3", table_name, sensor_column(3),
                              method=IndexMethod.HERMIT, host_column="average")
        readings = dataset.columns[sensor_column(3)]
        low, high = np.quantile(readings, [0.45, 0.55])
        result = database.query(table_name,
                                RangePredicate(sensor_column(3), low, high))
        expected = set(np.flatnonzero((readings >= low) & (readings <= high)))
        assert set(result.locations) == expected


class TestQueryGenerators:
    def test_range_queries_have_requested_width(self):
        queries = range_queries((0.0, 1000.0), selectivity=0.1, count=20, seed=1)
        assert len(queries) == 20
        for query in queries:
            assert query.high - query.low == pytest.approx(100.0)
            assert 0.0 <= query.low <= query.high <= 1000.0

    def test_point_queries_come_from_values(self):
        values = np.arange(100.0)
        points = point_queries(values, count=10, seed=2)
        assert len(points) == 10
        assert all(point in values for point in points)
        assert point_queries(np.array([]), 5) == []

    def test_mixed_queries(self):
        queries = mixed_queries((0.0, 100.0), np.arange(100.0), selectivity=0.05,
                                count=20, point_fraction=0.5, seed=3)
        assert len(queries) == 20
        points = [q for q in queries if q.low == q.high]
        assert len(points) == 10

    def test_determinism(self):
        first = range_queries((0.0, 10.0), 0.1, 5, seed=4)
        second = range_queries((0.0, 10.0), 0.1, 5, seed=4)
        assert first == second
