"""Bench-smoke guard: the vectorized lookup path must stay vectorized.

Runs the hot-path benchmark (``repro.bench.hotpath``) at tiny scale inside
tier-1, asserting two things the unit tests cannot: (1) the scalar seed path,
the vectorized path and the batch API return identical result sets on a real
workload, and (2) the concrete index/storage classes actually override the
array-API fallbacks — if someone deletes an override, every lookup silently
degrades to the object-at-a-time fallback while staying correct, and only
these assertions catch it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.hotpath import build_hotpath_setup, run_hotpath_suite
from repro.bench.planner import run_paged_read_suite, run_planner_suite
from repro.bench.query_throughput import run_query_throughput_suite
from repro.bench.writepath import run_writepath_suite
from repro.index.base import Index
from repro.index.bptree import BPlusTree
from repro.index.hash_index import HashIndex
from repro.index.paged_bptree import PagedBPlusTree
from repro.index.sorted_column import SortedColumnIndex
from repro.storage.identifiers import PointerScheme

SMOKE_ROWS = 4_000
SMOKE_QUERIES = 8
SMOKE_INSERTS = 1_200


@pytest.mark.bench_smoke
class TestVectorizedPathNotFallback:
    def test_bptree_overrides_array_range_search(self):
        assert "range_search_array" in BPlusTree.__dict__
        assert BPlusTree.range_search_array is not Index.range_search_array

    def test_sorted_column_overrides_array_api(self):
        assert "range_search_array" in SortedColumnIndex.__dict__
        assert "range_search_many_array" in SortedColumnIndex.__dict__
        assert "search_many" in SortedColumnIndex.__dict__

    def test_paged_bptree_overrides_array_range_search(self):
        """The disk path's leaf-run gather must not regress to the fallback."""
        assert "range_search_array" in PagedBPlusTree.__dict__
        assert PagedBPlusTree.range_search_array is not Index.range_search_array

    def test_hash_index_overrides_batched_search(self):
        assert "search_many" in HashIndex.__dict__
        assert HashIndex.search_many is not Index.search_many

    def test_indexes_override_batched_write(self):
        """Every concrete index keeps a real (non-fallback) insert_many."""
        for index_class in (BPlusTree, SortedColumnIndex, HashIndex,
                            PagedBPlusTree):
            assert "insert_many" in index_class.__dict__
            assert index_class.insert_many is not Index.insert_many

    @pytest.mark.parametrize("scheme", [PointerScheme.PHYSICAL,
                                        PointerScheme.LOGICAL])
    def test_lookup_results_are_arrays(self, scheme):
        """Both mechanisms keep candidates as arrays through to the result."""
        setup = build_hotpath_setup("synthetic", SMOKE_ROWS,
                                    pointer_scheme=scheme)
        for mechanism in setup.mechanisms.values():
            single = mechanism.lookup_range(*_mid_range(setup))
            assert isinstance(single.locations, np.ndarray)
            assert single.locations.dtype == np.int64
            batch = mechanism.lookup_range_many([_mid_range(setup)])
            assert all(isinstance(locations, np.ndarray)
                       for locations in batch.locations_per_query)


@pytest.mark.bench_smoke
class TestHotpathSmokeRun:
    @pytest.mark.parametrize("scheme", [PointerScheme.PHYSICAL,
                                        PointerScheme.LOGICAL])
    def test_all_paths_agree_at_tiny_scale(self, scheme):
        measurements = run_hotpath_suite(
            workloads=("synthetic",), num_tuples=SMOKE_ROWS,
            selectivity=0.01, num_queries=SMOKE_QUERIES,
            pointer_scheme=scheme,
        )
        assert len(measurements) == 2  # HERMIT + Baseline
        assert all(m.results_agree for m in measurements)
        assert all(m.total_results > 0 for m in measurements)

    def test_sorted_host_index_agrees(self):
        measurements = run_hotpath_suite(
            workloads=("stock",), num_tuples=SMOKE_ROWS,
            selectivity=0.01, num_queries=SMOKE_QUERIES,
            host_index_kind="sorted",
        )
        assert all(m.results_agree for m in measurements)


@pytest.mark.bench_smoke
class TestWritepathSmokeRun:
    @pytest.mark.parametrize("scheme", [PointerScheme.PHYSICAL,
                                        PointerScheme.LOGICAL])
    def test_scalar_and_batched_writes_agree_at_tiny_scale(self, scheme):
        measurements = run_writepath_suite(
            workloads=("synthetic",), insert_rows=SMOKE_INSERTS,
            pointer_scheme=scheme,
        )
        assert len(measurements) == 2  # HERMIT + Baseline
        assert all(m.results_agree for m in measurements)
        assert all(m.total_results > 0 for m in measurements)
        # At tiny scale just require the batch path not to collapse; the 5x
        # acceptance target applies to the full-scale standalone run.
        assert all(m.speedup_batched > 0.5 for m in measurements)


@pytest.mark.bench_smoke
class TestPlannerSmokeRun:
    def test_planner_parity_with_manual_plans(self):
        """Planner plans agree with every manual plan and stay competitive.

        The full-scale ``bench_planner.py`` run gates the 0.9x floor against
        the best manual plan; at tiny scale per-query work is mostly call
        dispatch, so this pins correctness parity plus a loose throughput
        floor that still catches the planner collapsing to a scan or a
        pathological plan.
        """
        measurements = run_planner_suite(num_tuples=SMOKE_ROWS,
                                         selectivity=0.01,
                                         num_queries=SMOKE_QUERIES)
        assert {m.query_class for m in measurements} == {
            "single", "point", "conjunctive"}
        assert all(m.results_agree for m in measurements)
        assert all(m.speedup_vs_best > 0.2 for m in measurements)
        by_class = {m.query_class: m for m in measurements}
        # Plan choice at tiny scale: the complete index must serve colC.
        assert by_class["single"].chosen == "idx_colC_btree"
        assert by_class["point"].chosen == "idx_colC_btree"

    def test_paged_gather_agrees_at_tiny_scale(self):
        measurement = run_paged_read_suite(num_tuples=SMOKE_ROWS,
                                           selectivity=0.01,
                                           num_queries=SMOKE_QUERIES)
        assert measurement.results_agree
        assert measurement.total_results > 0
        assert measurement.speedup_gather > 0.5


@pytest.mark.bench_smoke
class TestQueryManySmokeRun:
    @pytest.mark.parametrize("scheme", [PointerScheme.PHYSICAL,
                                        PointerScheme.LOGICAL])
    def test_batched_queries_agree_with_loop(self, scheme):
        """query_many / query_conjunctive_many equal the per-query loop.

        Tiny-scale race over every mechanism and batch class; the loose
        throughput floor only catches the batch path degenerating into a
        hidden per-query pipeline (the 3x acceptance target applies to the
        full-scale standalone run gated in CI).
        """
        measurements = run_query_throughput_suite(
            num_tuples=SMOKE_ROWS, selectivity=0.01, batch_size=12,
            rounds=2, pointer_schemes=(scheme,),
        )
        assert {m.batch_class for m in measurements} == {
            "range", "point", "conjunctive", "mixed"}
        assert {m.mechanism for m in measurements} == {
            "HERMIT", "Baseline", "Sorted", "CM"}
        assert all(m.results_agree for m in measurements)
        assert all(m.batched_vs_loop > 0.3 for m in measurements)
        range_results = [m for m in measurements
                         if m.batch_class == "range"]
        assert all(m.total_results > 0 for m in range_results)


def _mid_range(setup) -> tuple[float, float]:
    low, high = setup.domain
    middle = (low + high) / 2.0
    width = (high - low) * 0.05
    return middle - width, middle + width
