"""Paged read-path equivalence tests (ROADMAP: paged-index array path).

``PagedBPlusTree.range_search_array`` replaced the scalar ``Index`` fallback
with a leaf-run gather mirroring the in-memory ``BPlusTree``.  In the style
of the write-path equivalence suite, the property here is exact agreement:
for any data and any closed range, the paged gather, the paged scalar scan,
the in-memory tree and a brute-force filter must return the same multiset of
tuple identifiers — and the gather must not change the simulated page-access
accounting.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.index.base import Index, KeyRange
from repro.index.bptree import BPlusTree
from repro.index.paged_bptree import PagedBPlusTree
from repro.storage.buffer_pool import BufferPool
from repro.storage.disk import DiskManager

SETTINGS = settings(max_examples=25, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])

keys_strategy = st.lists(
    st.floats(min_value=-100.0, max_value=100.0, allow_nan=False),
    min_size=0, max_size=150,
)

bounds_strategy = st.tuples(
    st.floats(min_value=-110.0, max_value=110.0, allow_nan=False),
    st.floats(min_value=-110.0, max_value=110.0, allow_nan=False),
)


def make_paged_tree(node_capacity: int = 8,
                    pool_capacity: int = 128) -> PagedBPlusTree:
    return PagedBPlusTree(BufferPool(DiskManager(), capacity=pool_capacity),
                          node_capacity=node_capacity)


class TestPagedRangeSearchArray:
    @SETTINGS
    @given(keys=keys_strategy, bounds=bounds_strategy)
    def test_gather_matches_scalar_and_in_memory(self, keys, bounds):
        paged = make_paged_tree()
        in_memory = BPlusTree(node_capacity=8)
        for tid, key in enumerate(keys):
            paged.insert(key, tid)
            in_memory.insert(key, tid)
        key_range = KeyRange(*bounds)

        expected = sorted(tid for tid, key in enumerate(keys)
                          if key_range.contains(key))
        gathered = sorted(paged.range_search_array(key_range).tolist())
        assert gathered == expected
        assert gathered == sorted(paged.range_search(key_range))
        assert gathered == sorted(in_memory.range_search_array(key_range).tolist())

    @SETTINGS
    @given(keys=keys_strategy, bounds=bounds_strategy)
    def test_gather_matches_base_fallback(self, keys, bounds):
        """The override returns exactly what the scalar fallback returned."""
        paged = make_paged_tree()
        paged.insert_many(np.asarray(keys, dtype=np.float64),
                          np.arange(len(keys)))
        key_range = KeyRange(*bounds)
        fallback = Index.range_search_array(paged, key_range)
        gathered = paged.range_search_array(key_range)
        assert sorted(gathered.tolist()) == sorted(fallback.tolist())
        assert gathered.dtype == np.int64

    def test_duplicate_keys_return_every_tid(self):
        paged = make_paged_tree()
        for tid in range(40):
            paged.insert(5.0, tid)
        found = paged.range_search_array(KeyRange(5.0, 5.0))
        assert sorted(found.tolist()) == list(range(40))

    def test_empty_result_is_int64(self):
        paged = make_paged_tree()
        paged.insert(1.0, 0)
        found = paged.range_search_array(KeyRange(50.0, 60.0))
        assert found.size == 0
        assert found.dtype == np.int64

    def test_range_search_many_array_unions_ranges(self):
        paged = make_paged_tree()
        keys = np.linspace(0.0, 10.0, 200)
        paged.insert_many(keys, np.arange(200))
        ranges = [KeyRange(0.0, 1.0), KeyRange(5.0, 6.0)]
        found = paged.range_search_many_array(ranges)
        expected = sorted(
            tid for tid, key in enumerate(keys.tolist())
            if any(r.contains(key) for r in ranges)
        )
        assert sorted(found.tolist()) == expected

    def test_page_accounting_matches_scalar_path(self):
        """The gather touches exactly the pages the scalar scan touched."""
        rng = np.random.default_rng(5)
        keys = rng.uniform(0.0, 1.0, 3_000)
        key_range = KeyRange(0.25, 0.75)

        scalar_tree = make_paged_tree(node_capacity=16, pool_capacity=16)
        scalar_tree.insert_many(keys, np.arange(3_000))
        scalar_tree.pool.stats.reset()
        scalar_tree.range_search(key_range)
        scalar_requests = (scalar_tree.pool.stats.hits
                           + scalar_tree.pool.stats.misses)

        gather_tree = make_paged_tree(node_capacity=16, pool_capacity=16)
        gather_tree.insert_many(keys, np.arange(3_000))
        gather_tree.pool.stats.reset()
        gather_tree.range_search_array(key_range)
        gather_requests = (gather_tree.pool.stats.hits
                           + gather_tree.pool.stats.misses)
        assert gather_requests == scalar_requests
