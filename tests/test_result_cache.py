"""The epoch-validated result cache (``pytest -m serving``).

Four layers, bottom up:

* **Canonical keys** — permuted, duplicated and overlapping conjuncts
  collapse to the same key; unsatisfiable conjunctions bypass.
* **ResultCache units** — doorkeeper admission, exact-epoch staleness,
  LRU and byte-budget eviction, batch probe/fill, clear/sweep/peek, and
  the stats surface (including the sharded ``merge``).
* **Engine equivalence** (hypothesis) — for any request mix interleaved
  with inserts, updates and deletes, ``execute`` / ``execute_many`` with
  the cache enabled return exactly the cache-off results, across every
  index mechanism and both pointer schemes.
* **Concurrency** — the torn-read stress shape from ``test_serving``:
  a writer commits marker rows in all-or-nothing batches while cached
  readers hammer the same table; every observed count must sit on a
  batch boundary (a stale cached array would break that instantly).
"""

from __future__ import annotations

import threading

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cache.result_cache import (
    ResultCache,
    ResultCacheConfig,
    ResultCacheStats,
    canonical_key,
)
from repro.engine.catalog import IndexMethod
from repro.engine.database import Database
from repro.engine.query import (
    ConjunctiveQuery,
    QueryRequest,
    RangePredicate,
    conjunction,
)
from repro.errors import ConfigurationError
from repro.serving import Server
from repro.sharding import ShardedDatabase
from repro.storage.identifiers import PointerScheme
from repro.storage.schema import numeric_schema

pytestmark = pytest.mark.serving

SETTINGS = settings(max_examples=10, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])

METHODS = ("hermit", "btree", "sorted", "cm")
SCHEMES = (PointerScheme.PHYSICAL, PointerScheme.LOGICAL)
ROWS = 400
TARGET_DOMAIN = (0.0, 1_000.0)


def build_database(scheme: PointerScheme = PointerScheme.PHYSICAL,
                   method: str = "sorted", rows: int = ROWS,
                   cache_config: ResultCacheConfig | None = None,
                   seed: int = 11) -> Database:
    """(pk, host, target, payload) with a target index, cache enabled."""
    rng = np.random.default_rng(seed)
    low, high = TARGET_DOMAIN
    target = rng.uniform(low, high, size=rows)
    database = Database(
        pointer_scheme=scheme,
        result_cache=cache_config or ResultCacheConfig())
    database.create_table(numeric_schema(
        "t", ["pk", "host", "target", "payload"], primary_key="pk"))
    database.insert_many("t", {
        "pk": np.arange(rows, dtype=np.float64),
        "host": 2.0 * target + 10.0,
        "target": target,
        "payload": rng.uniform(0.0, 1.0, size=rows),
    })
    database.create_index("idx_host", "t", "host", method=IndexMethod.BTREE)
    if method == "hermit":
        database.create_index("idx_target", "t", "target",
                              method=IndexMethod.HERMIT, host_column="host")
    elif method == "btree":
        database.create_index("idx_target", "t", "target",
                              method=IndexMethod.BTREE)
    elif method == "sorted":
        database.create_index("idx_target", "t", "target",
                              method=IndexMethod.SORTED_COLUMN)
    elif method == "cm":
        database.create_index("idx_target", "t", "target",
                              method=IndexMethod.CORRELATION_MAP,
                              host_column="host",
                              cm_target_bucket_width=25.0,
                              cm_host_bucket_width=50.0)
    else:
        raise AssertionError(method)
    return database


def locations_equal(result_a, result_b) -> bool:
    """Hits carry read-only arrays, misses carry lists — compare values."""
    return np.array_equal(result_a.locations, result_b.locations)


class TestCanonicalKey:
    def test_single_predicate_fast_path_matches_merged_path(self):
        query = conjunction(RangePredicate("target", 2.0, 9.0))
        duplicated = conjunction(RangePredicate("target", 2.0, 9.0),
                                 RangePredicate("target", 2.0, 9.0))
        assert canonical_key(query) == canonical_key(duplicated)
        assert canonical_key(query) == ("target", 2.0, 9.0)

    def test_permuted_conjuncts_share_a_key(self):
        a = conjunction(RangePredicate("host", 1.0, 5.0),
                        RangePredicate("target", 2.0, 9.0))
        b = conjunction(RangePredicate("target", 2.0, 9.0),
                        RangePredicate("host", 1.0, 5.0))
        assert canonical_key(a) == canonical_key(b)

    def test_overlapping_same_column_predicates_intersect(self):
        overlapping = conjunction(RangePredicate("target", 0.0, 10.0),
                                  RangePredicate("target", 5.0, 20.0))
        merged = conjunction(RangePredicate("target", 5.0, 10.0))
        assert canonical_key(overlapping) == canonical_key(merged)

    def test_unsatisfiable_returns_none(self):
        disjoint = conjunction(RangePredicate("target", 0.0, 1.0),
                               RangePredicate("target", 5.0, 6.0))
        assert canonical_key(disjoint) is None


class TestResultCacheUnits:
    KEY = (("target", 1.0, 2.0),)

    def put_twice(self, cache: ResultCache, key=None, table="t",
                  locations=(1, 2, 3), epoch=0, used_index="idx"):
        """Install through the doorkeeper (first put only registers)."""
        array = np.asarray(locations, dtype=np.int64)
        cache.put(table, key or self.KEY, array, epoch, used_index)
        cache.put(table, key or self.KEY, array, epoch, used_index)

    def test_admission_defers_first_fill(self):
        cache = ResultCache()
        array = np.array([1, 2], dtype=np.int64)
        cache.put("t", self.KEY, array, 0, None)
        assert cache.get("t", self.KEY, 0) is None
        assert cache.info().admission_deferrals == 1
        cache.put("t", self.KEY, array, 0, None)
        entry = cache.get("t", self.KEY, 0)
        assert entry is not None
        assert np.array_equal(entry.locations, array)
        assert not entry.locations.flags.writeable

    def test_admission_off_installs_immediately(self):
        cache = ResultCache(ResultCacheConfig(admission=False))
        cache.put("t", self.KEY, np.array([7], dtype=np.int64), 0, None)
        assert cache.get("t", self.KEY, 0) is not None
        assert cache.info().admission_deferrals == 0

    def test_stale_entry_evicted_on_probe(self):
        cache = ResultCache(ResultCacheConfig(admission=False))
        cache.put("t", self.KEY, np.array([1], dtype=np.int64), 3, None)
        assert cache.get("t", self.KEY, 4) is None
        info = cache.info()
        assert info.stale_evictions == 1
        assert info.entries == 0
        # The stale probe counts as a miss, not a hit.
        assert info.misses == 1 and info.hits == 0

    def test_lru_eviction_by_entry_count(self):
        cache = ResultCache(ResultCacheConfig(max_entries=2,
                                              admission=False))
        for value in range(3):
            cache.put("t", (("c", value, value),),
                      np.array([value], dtype=np.int64), 0, None)
        assert len(cache) == 2
        assert cache.get("t", (("c", 0, 0),), 0) is None  # cold end died
        assert cache.get("t", (("c", 2, 2),), 0) is not None
        assert cache.info().lru_evictions == 1

    def test_lru_order_follows_hits(self):
        cache = ResultCache(ResultCacheConfig(max_entries=2,
                                              admission=False))
        cache.put("t", (("c", 0, 0),), np.array([0]), 0, None)
        cache.put("t", (("c", 1, 1),), np.array([1]), 0, None)
        assert cache.get("t", (("c", 0, 0),), 0) is not None  # warm 0
        cache.put("t", (("c", 2, 2),), np.array([2]), 0, None)
        assert cache.get("t", (("c", 1, 1),), 0) is None  # 1 was coldest
        assert cache.get("t", (("c", 0, 0),), 0) is not None

    def test_byte_budget_eviction(self):
        config = ResultCacheConfig(max_bytes=2 * (800 + 128),
                                   admission=False)
        cache = ResultCache(config)
        for value in range(3):
            cache.put("t", (("c", value, value),),
                      np.zeros(100, dtype=np.int64), 0, None)
        assert len(cache) == 2
        assert cache.info().bytes <= config.max_bytes

    def test_oversized_result_never_cached(self):
        cache = ResultCache(ResultCacheConfig(max_bytes=256,
                                              admission=False))
        cache.put("t", self.KEY, np.zeros(1000, dtype=np.int64), 0, None)
        assert len(cache) == 0

    def test_peek_is_non_destructive(self):
        cache = ResultCache(ResultCacheConfig(admission=False))
        cache.put("t", self.KEY, np.array([1], dtype=np.int64), 3, None)
        assert cache.peek("t", self.KEY, 3) is not None
        stale = cache.peek("t", self.KEY, 4)
        assert stale is None
        info = cache.info()
        assert info.hits == 0 and info.misses == 0
        assert info.entries == 1  # even the stale peek evicted nothing

    def test_get_many_mixes_hits_misses_and_bypasses(self):
        cache = ResultCache(ResultCacheConfig(admission=False))
        cache.put("t", (("c", 1, 1),), np.array([1], dtype=np.int64), 0, "i")
        keys = [(("c", 1, 1),), (("c", 2, 2),), None]
        entries = cache.get_many("t", keys, 0)
        assert entries[0] is not None and entries[1] is None
        assert entries[2] is None
        info = cache.info()
        assert info.hits == 1 and info.misses == 1  # None key uncounted

    def test_put_many_installs_after_doorkeeper(self):
        cache = ResultCache()
        items = [((("c", value, value),),
                  np.array([value], dtype=np.int64), None)
                 for value in range(4)]
        cache.put_many("t", items, 0)
        assert len(cache) == 0  # all first sightings
        cache.put_many("t", items, 0)
        assert len(cache) == 4
        entry = cache.get("t", (("c", 2, 2),), 0)
        assert np.array_equal(entry.locations, [2])
        assert not entry.locations.flags.writeable

    def test_clear_drops_entries_and_doorkeeper_keeps_counters(self):
        cache = ResultCache()
        self.put_twice(cache)
        assert cache.get("t", self.KEY, 0) is not None
        cache.clear()
        assert len(cache) == 0
        info = cache.info()
        assert info.hits == 1  # counters survive
        # Doorkeeper memory is gone too: one put defers again.
        cache.put("t", self.KEY, np.array([1], dtype=np.int64), 0, None)
        assert cache.get("t", self.KEY, 0) is None

    def test_sweep_drops_stale_and_dropped_tables(self):
        cache = ResultCache(ResultCacheConfig(admission=False))
        cache.put("a", self.KEY, np.array([1], dtype=np.int64), 3, None)
        cache.put("b", self.KEY, np.array([2], dtype=np.int64), 5, None)
        assert cache.sweep({"a": 3}) == 1  # b's table vanished
        assert cache.sweep({"a": 4}) == 1  # a went stale
        assert len(cache) == 0

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            ResultCacheConfig(max_entries=0)
        with pytest.raises(ConfigurationError):
            ResultCacheConfig(max_bytes=0)

    def test_stats_merge_sums_counters_and_tables(self):
        cache_a = ResultCache(ResultCacheConfig(admission=False))
        cache_b = ResultCache(ResultCacheConfig(admission=False))
        cache_a.put("t", self.KEY, np.array([1], dtype=np.int64), 0, None)
        cache_b.put("t", self.KEY, np.array([2], dtype=np.int64), 0, None)
        cache_a.get("t", self.KEY, 0)
        cache_b.get("t", (("c", 9, 9),), 0)
        merged = ResultCacheStats.merge([cache_a.info(), cache_b.info()])
        assert merged.hits == 1 and merged.misses == 1
        assert merged.entries == 2
        assert merged.per_table["t"].entries == 2
        assert merged.hit_ratio == 0.5


class TestEngineWiring:
    def repeat_until_hit(self, database: Database, request: QueryRequest):
        """Issue a request enough times to pass the doorkeeper and hit."""
        database.execute(request)  # registers with the doorkeeper
        database.execute(request)  # installs
        return database.execute(request)  # hits

    def test_execute_hit_matches_uncached_and_marks_explain(self):
        database = build_database()
        request = QueryRequest.range("t", "target", 100.0, 300.0)
        uncached = database.execute(request)
        hit = self.repeat_until_hit(database, request)
        assert locations_equal(uncached, hit)
        assert hit.used_index == uncached.used_index
        plan = database.explain("t", ConjunctiveQuery(
            (RangePredicate("target", 100.0, 300.0),)))
        assert plan.cached
        assert plan.used_index == uncached.used_index
        assert "result cache hit" in plan.describe()

    def test_explain_does_not_perturb_cache_state(self):
        database = build_database()
        request = QueryRequest.range("t", "target", 100.0, 300.0)
        self.repeat_until_hit(database, request)
        before = database.result_cache_info()
        database.explain("t", ConjunctiveQuery(
            (RangePredicate("target", 100.0, 300.0),)))
        after = database.result_cache_info()
        assert (after.hits, after.misses) == (before.hits, before.misses)

    def test_dml_invalidates_between_executions(self):
        database = build_database()
        request = QueryRequest.range("t", "target", 0.0, 1_000.0)
        hit = self.repeat_until_hit(database, request)
        count = len(hit.locations)
        database.insert_many("t", {
            "pk": np.array([10_000.0]), "host": np.array([1.0]),
            "target": np.array([500.0]), "payload": np.array([0.0]),
        })
        fresh = database.execute(request)
        assert len(fresh.locations) == count + 1
        assert database.result_cache_info().stale_evictions >= 1

    def test_execute_many_splices_hits_in_input_order(self):
        database = build_database()
        requests = [QueryRequest.range("t", "target", 100.0 * i,
                                       100.0 * i + 150.0)
                    for i in range(6)]
        baseline = database.execute_many(requests)
        database.execute_many(requests)  # install (doorkeeper passed)
        # Mix hits with never-seen requests in one batch.
        mixed = requests[:3] + [QueryRequest.point("t", "target", -1.0)] + \
            requests[3:]
        mixed_baseline = baseline[:3] + \
            [database.execute(QueryRequest.point("t", "target", -1.0))] + \
            baseline[3:]
        results = database.execute_many(mixed)
        assert len(results) == len(mixed)
        for got, expected in zip(results, mixed_baseline):
            assert locations_equal(got, expected)
        assert database.result_cache_info().hits >= 6

    def test_result_cache_clear_and_disabled_database(self):
        database = build_database()
        request = QueryRequest.range("t", "target", 100.0, 300.0)
        self.repeat_until_hit(database, request)
        assert database.result_cache_info().entries >= 1
        database.result_cache_clear()
        assert database.result_cache_info().entries == 0

        plain = Database()
        info = plain.result_cache_info()
        assert info.enabled is False and info.entries == 0
        plain.result_cache_clear()  # no-op, must not raise

    def test_server_stats_carry_cache_counters(self):
        database = build_database()
        request = QueryRequest.range("t", "target", 100.0, 300.0)
        server = Server(database)
        try:
            for _ in range(3):
                server.submit(request).result(timeout=5.0)
            stats = server.stats()
            assert stats.result_cache.enabled
            assert stats.result_cache.hits >= 1
        finally:
            server.close()

    def test_checkpoint_sweeps_stale_entries(self, tmp_path):
        from repro.durability.config import DurabilityConfig

        database = Database(
            durability=DurabilityConfig(directory=tmp_path),
            result_cache=ResultCacheConfig())
        database.create_table(numeric_schema(
            "t", ["pk", "target"], primary_key="pk"))
        database.insert_many("t", {
            "pk": np.arange(10, dtype=np.float64),
            "target": np.arange(10, dtype=np.float64),
        })
        database.create_table(numeric_schema(
            "u", ["pk", "target"], primary_key="pk"))
        database.insert_many("u", {
            "pk": np.arange(10, dtype=np.float64),
            "target": np.arange(10, dtype=np.float64),
        })
        request = QueryRequest.range("t", "target", 0.0, 5.0)
        database.execute(request)
        database.execute(request)
        assert database.result_cache_info().entries == 1
        # DML on *another* table leaves t's entry fresh; DML on t makes
        # it sweepable without any probe touching it.
        database.insert_many("t", {
            "pk": np.array([100.0]), "target": np.array([100.0]),
        })
        database.checkpoint()
        info = database.result_cache_info()
        assert info.entries == 0
        assert info.stale_evictions == 1


class TestShardedComposition:
    def build(self, num_shards: int = 2) -> ShardedDatabase:
        database = ShardedDatabase(
            num_shards=num_shards, mode="inline",
            result_cache=ResultCacheConfig())
        database.create_table(
            numeric_schema("t", ["pk", "target"], primary_key="pk"),
            boundaries=[50.0])
        database.insert_many("t", {
            "pk": np.arange(100, dtype=np.float64),
            "target": np.arange(100, dtype=np.float64),
        })
        return database

    def test_merged_stats_and_clear_across_shards(self):
        database = self.build()
        requests = [QueryRequest.range("t", "target", 10.0, 60.0)] * 3
        for _ in range(3):
            database.execute_many(requests)
        info = database.result_cache_info()
        assert info.enabled
        assert info.hits >= 1
        assert info.entries >= 1
        database.result_cache_clear()
        assert database.result_cache_info().entries == 0

    def test_sharded_results_match_cache_off(self):
        database = self.build()
        request = QueryRequest.range("t", "target", 10.0, 60.0)
        first = database.execute(request)
        for _ in range(3):
            again = database.execute(request)
            assert sorted(again.locations) == sorted(first.locations)


@pytest.mark.parametrize("scheme", SCHEMES, ids=lambda s: s.value)
@pytest.mark.parametrize("method", METHODS)
class TestCachedEqualsUncached:
    """Hypothesis: cache-on results == cache-off results under DML."""

    @SETTINGS
    @given(data=st.data())
    def test_equivalence_under_interleaved_dml(self, scheme, method, data):
        database = build_database(scheme, method, rows=150)
        cache = database.result_cache
        low, high = TARGET_DOMAIN
        bound = st.floats(min_value=low - 100.0, max_value=high + 100.0,
                          allow_nan=False, width=64)
        next_pk = 10_000.0
        for _ in range(data.draw(st.integers(min_value=2, max_value=4),
                                 label="rounds")):
            pairs = data.draw(st.lists(st.tuples(bound, bound), min_size=1,
                                       max_size=6), label="bounds")
            requests = [QueryRequest.range("t", "target", min(a, b),
                                           max(a, b)) for a, b in pairs]
            # Issue the batch repeatedly with the cache on: passes the
            # doorkeeper, installs, then serves hits — every repetition
            # must equal the cache-off answer computed on the same data.
            for _ in range(3):
                cached_many = database.execute_many(requests)
                cached_one = database.execute(requests[0])
                cache.enabled = False
                plain_many = database.execute_many(requests)
                plain_one = database.execute(requests[0])
                cache.enabled = True
                for got, expected in zip(cached_many, plain_many):
                    assert locations_equal(got, expected)
                assert locations_equal(cached_one, plain_one)
            mutation = data.draw(st.sampled_from(
                ["insert", "delete", "update", "none"]), label="dml")
            if mutation == "insert":
                value = data.draw(bound, label="insert_target")
                database.insert_many("t", {
                    "pk": np.array([next_pk]),
                    "host": np.array([2.0 * value + 10.0]),
                    "target": np.array([value]),
                    "payload": np.array([0.5]),
                })
                next_pk += 1.0
            elif mutation in ("delete", "update"):
                victims = database.execute(
                    QueryRequest.range("t", "target", low, high)).locations
                if len(victims) == 0:
                    continue
                index = data.draw(st.integers(
                    min_value=0, max_value=len(victims) - 1), label="victim")
                location = int(victims[index])
                if mutation == "delete":
                    database.delete("t", location)
                else:
                    value = data.draw(bound, label="update_target")
                    database.update("t", location, {"target": value})


class TestNoTornCachedReads:
    def test_writer_batches_never_half_visible_to_cached_readers(self):
        """The ``test_serving`` stress shape, pointed at the cache.

        A writer inserts marker rows in all-or-nothing batches; cached
        readers repeat the same marker query (maximal hit pressure).
        Every count observed — from the cache or not — must be a
        multiple of the batch size: a cached array surviving its epoch
        would surface as an off-boundary count.
        """
        database = build_database(rows=500)
        batch = 8
        marker = 5_000.0
        request = QueryRequest.point("t", "target", marker)
        failures: list[str] = []
        stop = threading.Event()

        def writer():
            pk = 50_000.0
            for _ in range(30):
                database.insert_many("t", {
                    "pk": pk + np.arange(batch, dtype=np.float64),
                    "host": np.full(batch, marker * 2.0),
                    "target": np.full(batch, marker),
                    "payload": np.zeros(batch),
                })
                pk += batch
            stop.set()

        def reader():
            while not stop.is_set():
                count = len(database.execute(request).locations)
                if count % batch:
                    failures.append(f"torn cached read: {count}")
                    return

        threads = [threading.Thread(target=writer)] + [
            threading.Thread(target=reader) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not failures, failures
        final = database.execute(request)
        assert len(final.locations) == 30 * batch
        info = database.result_cache_info()
        assert info.hits > 0  # the stress actually exercised the cache
