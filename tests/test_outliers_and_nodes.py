"""Unit tests for outlier buffers and TRS-Tree node types."""

import pytest

from repro.core.node import (
    TRSInternalNode,
    TRSLeafNode,
    equal_width_subranges,
)
from repro.core.outliers import OutlierBuffer
from repro.core.regression import LinearModel
from repro.index.base import KeyRange


class TestOutlierBuffer:
    def test_add_lookup(self):
        buffer = OutlierBuffer()
        buffer.add(5.0, 100)
        buffer.add(5.0, 101)
        buffer.add(7.0, 102)
        assert sorted(buffer.lookup(KeyRange(4.0, 6.0))) == [100, 101]
        assert sorted(buffer.lookup(KeyRange(0.0, 10.0))) == [100, 101, 102]
        assert buffer.lookup_point(7.0) == [102]
        assert len(buffer) == 3
        assert 5.0 in buffer

    def test_remove(self):
        buffer = OutlierBuffer()
        buffer.add(5.0, 100)
        assert buffer.remove(5.0, 100)
        assert not buffer.remove(5.0, 100)
        assert not buffer.remove(9.0, 1)
        assert len(buffer) == 0
        assert 5.0 not in buffer

    def test_clear_and_memory(self):
        buffer = OutlierBuffer()
        empty_bytes = buffer.memory_bytes()
        for i in range(100):
            buffer.add(float(i), i)
        assert buffer.memory_bytes() > empty_bytes
        buffer.clear()
        assert len(buffer) == 0

    def test_items(self):
        buffer = OutlierBuffer()
        buffer.add(1.0, "a")
        buffer.add(1.0, "b")
        assert sorted(buffer.items()) == [(1.0, "a"), (1.0, "b")]


class TestEqualWidthSubranges:
    def test_partition_covers_parent(self):
        subranges = equal_width_subranges(KeyRange(0.0, 100.0), 4)
        assert len(subranges) == 4
        assert subranges[0].low == 0.0
        assert subranges[-1].high == 100.0
        for left, right in zip(subranges, subranges[1:]):
            assert left.high == pytest.approx(right.low)

    def test_single_child(self):
        assert equal_width_subranges(KeyRange(0, 10), 1) == [KeyRange(0, 10)]


class TestLeafNode:
    def make_leaf(self) -> TRSLeafNode:
        model = LinearModel(beta=2.0, alpha=0.0, epsilon=1.0)
        return TRSLeafNode(KeyRange(0.0, 10.0), height=1, model=model)

    def test_covers_uses_model(self):
        leaf = self.make_leaf()
        assert leaf.covers(2.0, 4.5)
        assert not leaf.covers(2.0, 10.0)

    def test_host_range(self):
        leaf = self.make_leaf()
        host = leaf.get_host_range(KeyRange(1.0, 2.0))
        # The bounds carry a two-ulp outward pad so border-covered tuples
        # can never round out of the probe.
        assert host.low == pytest.approx(1.0)
        assert host.high == pytest.approx(5.0)
        assert host.low <= 1.0 <= 5.0 <= host.high

    def test_population_and_ratios(self):
        leaf = self.make_leaf()
        leaf.num_covered = 100
        leaf.num_inserted = 20
        leaf.num_deleted = 10
        assert leaf.population == 110
        leaf.add_outlier(1.0, 1)
        leaf.add_outlier(2.0, 2)
        assert leaf.outlier_ratio() == pytest.approx(2 / 110)
        assert leaf.deleted_ratio() == pytest.approx(0.1)

    def test_ratios_with_zero_population(self):
        leaf = self.make_leaf()
        assert leaf.outlier_ratio() == 0.0
        assert leaf.deleted_ratio() == 0.0

    def test_walk_yields_self(self):
        leaf = self.make_leaf()
        assert list(leaf.walk()) == [leaf]
        assert leaf.is_leaf


class TestInternalNode:
    def make_tree(self) -> TRSInternalNode:
        parent = TRSInternalNode(KeyRange(0.0, 100.0), height=1)
        model = LinearModel(1.0, 0.0, 0.0)
        for sub in equal_width_subranges(parent.key_range, 4):
            child = TRSLeafNode(sub, height=2, model=model, parent=parent)
            parent.children.append(child)
        return parent

    def test_child_for_routes_by_value(self):
        parent = self.make_tree()
        assert parent.child_for(10.0) is parent.children[0]
        assert parent.child_for(25.0) is parent.children[1]
        assert parent.child_for(99.9) is parent.children[3]

    def test_child_for_clamps_out_of_range(self):
        parent = self.make_tree()
        assert parent.child_for(-5.0) is parent.children[0]
        assert parent.child_for(500.0) is parent.children[3]

    def test_child_for_without_children_raises(self):
        empty = TRSInternalNode(KeyRange(0, 1), height=1)
        with pytest.raises(ValueError):
            empty.child_for(0.5)

    def test_children_overlapping(self):
        parent = self.make_tree()
        overlapping = parent.children_overlapping(KeyRange(30.0, 60.0))
        assert parent.children[1] in overlapping
        assert parent.children[2] in overlapping
        assert parent.children[0] not in overlapping
        assert parent.children[3] not in overlapping

    def test_replace_child(self):
        parent = self.make_tree()
        replacement = TRSLeafNode(parent.children[0].key_range, height=2,
                                  model=LinearModel(0, 0, 0))
        old = parent.children[0]
        parent.replace_child(old, replacement)
        assert parent.children[0] is replacement
        assert replacement.parent is parent
        with pytest.raises(ValueError):
            parent.replace_child(old, replacement)

    def test_walk_covers_subtree(self):
        parent = self.make_tree()
        assert len(list(parent.walk())) == 5
        assert not parent.is_leaf
