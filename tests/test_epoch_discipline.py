"""The dynamic epoch-lock discipline checker: seed each violation class
and assert ``EpochManager(debug=True)`` detects it.

Static rule REP003 catches lexical violations on the ``Database``
facade; this suite covers what only a runtime checker can see —
violations through indirection (a helper called under the wrong side),
actual cross-thread lock ordering, and the guard wiring from the
catalog's mutators back to the manager.
"""

from __future__ import annotations

import threading

import pytest

from repro.engine.database import Database
from repro.engine.epochs import EpochManager
from repro.engine.query import RangePredicate
from repro.errors import ConcurrencyError, EpochDisciplineError
from repro.storage.schema import numeric_schema

pytestmark = pytest.mark.epoch_discipline


@pytest.fixture(autouse=True)
def fresh_order_tracking():
    """Lock-order edges are process-global; isolate each test."""
    EpochManager.reset_order_tracking()
    yield
    EpochManager.reset_order_tracking()


@pytest.fixture
def debug_db() -> Database:
    database = Database(epoch_debug=True)
    database.create_table(numeric_schema("t", ["id", "v"], "id"))
    database.insert_many("t", {"id": [1.0, 2.0, 3.0],
                               "v": [10.0, 20.0, 30.0]})
    return database


class TestSharedSideWrites:
    def test_catalog_mutation_under_read_raises(self, debug_db):
        with pytest.raises(EpochDisciplineError, match="shared .read. side"):
            with debug_db.epochs.read():
                debug_db.catalog.bump_data_epoch("t")

    def test_dml_under_read_raises_via_guard(self, debug_db):
        # insert_many itself takes the write side, which from inside a
        # read is an upgrade — seeded here through the public API, the
        # way a coalescing handler would actually misuse it.
        with pytest.raises(ConcurrencyError):
            with debug_db.epochs.read():
                debug_db.insert_many("t", {"id": [4.0], "v": [40.0]})

    def test_unlocked_catalog_mutation_raises(self, debug_db):
        with pytest.raises(EpochDisciplineError, match="without holding"):
            debug_db.catalog.bump_data_epoch("t")

    def test_mutation_under_write_is_fine(self, debug_db):
        with debug_db.epochs.write():
            debug_db.catalog.bump_data_epoch("t")

    def test_message_carries_read_acquisition_stack(self, debug_db):
        with pytest.raises(EpochDisciplineError) as info:
            with debug_db.epochs.read():
                debug_db.catalog.bump_data_epoch("t")
        assert "read side acquired at" in str(info.value)
        # The stack should point back into this test.
        assert "test_message_carries_read_acquisition_stack" in str(info.value)


class TestUpgradeAttempts:
    def test_nested_upgrade_raises_discipline_error(self, debug_db):
        with pytest.raises(EpochDisciplineError,
                           match="read-to-write upgrade"):
            with debug_db.epochs.read():
                with debug_db.epochs.write():
                    pass

    def test_upgrade_message_reports_read_stack(self, debug_db):
        with pytest.raises(EpochDisciplineError) as info:
            with debug_db.epochs.read():
                with debug_db.epochs.write():
                    pass
        assert "read side acquired at" in str(info.value)

    def test_non_debug_upgrade_still_concurrency_error(self):
        manager = EpochManager()
        with pytest.raises(ConcurrencyError):
            with manager.read():
                with manager.write():
                    pass

    def test_write_then_read_is_legal(self, debug_db):
        # The reverse nesting (writer reads its own tables) is part of
        # the protocol and must not trip the checker.
        with debug_db.epochs.write():
            with debug_db.epochs.read():
                pass


class TestLockOrderInversions:
    def test_inverted_order_across_threads_raises(self):
        a = EpochManager(debug=True, name="A")
        b = EpochManager(debug=True, name="B")
        with a.read():
            with b.read():
                pass
        caught: list[EpochDisciplineError] = []

        def inverted():
            try:
                with b.read():
                    with a.read():
                        pass
            except EpochDisciplineError as error:
                caught.append(error)

        thread = threading.Thread(target=inverted)
        thread.start()
        thread.join()
        assert len(caught) == 1
        assert "lock-order inversion" in str(caught[0])
        assert "[A]" in str(caught[0]) and "[B]" in str(caught[0])

    def test_consistent_order_is_fine(self):
        a = EpochManager(debug=True, name="A")
        b = EpochManager(debug=True, name="B")
        for _ in range(3):
            with a.read():
                with b.write():
                    pass
            with a.write():
                with b.read():
                    pass

    def test_write_side_inversion_detected(self):
        a = EpochManager(debug=True, name="A")
        b = EpochManager(debug=True, name="B")
        with a.write():
            with b.write():
                pass
        with pytest.raises(EpochDisciplineError,
                           match="lock-order inversion"):
            with b.write():
                with a.write():
                    pass


class TestCleanWorkloads:
    def test_full_dml_query_ddl_workload_is_silent(self, debug_db):
        debug_db.create_index("idx_v", "t", "v")
        debug_db.insert_many("t", {"id": [4.0, 5.0], "v": [40.0, 50.0]})
        location = int(debug_db.query(
            "t", RangePredicate("id", 2.0, 2.0)).locations[0])
        debug_db.update("t", location, {"v": 21.0})
        debug_db.delete("t", location)
        result = debug_db.query("t", RangePredicate("v", 0.0, 100.0))
        assert len(result.locations) == 4
        debug_db.drop_index("t", "idx_v")
        report = debug_db.memory_report()
        assert report.total_bytes > 0

    def test_concurrent_readers_and_writer_under_debug(self, debug_db):
        errors: list[BaseException] = []
        stop = threading.Event()

        def reader():
            try:
                while not stop.is_set():
                    debug_db.query("t", RangePredicate("id", 0.0, 100.0))
            except BaseException as error:  # noqa: BLE001 - the test
                # asserts no exception of any kind escapes the workload
                errors.append(error)

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for thread in threads:
            thread.start()
        try:
            for batch in range(10):
                debug_db.insert_many(
                    "t", {"id": [100.0 + batch], "v": [float(batch)]}
                )
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        assert errors == []

    def test_debug_off_guard_is_noop(self):
        database = Database()
        database.create_table(numeric_schema("t", ["id", "v"], "id"))
        # Unlocked direct catalog mutation: undetected without debug —
        # exactly the lean-path behaviour the default promises.
        database.catalog.bump_data_epoch("t")

    def test_epoch_counting_unchanged_under_debug(self, debug_db):
        before = debug_db.epochs.current
        debug_db.insert_many("t", {"id": [9.0], "v": [90.0]})
        assert debug_db.epochs.current == before + 1
