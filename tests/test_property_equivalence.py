"""Property-based equivalence tests.

The central correctness invariant of the paper: for any data distribution,
any noise, any predicate and any interleaving of maintenance operations,
Hermit returns *exactly* the same tuples as the conventional B+-tree secondary
index and as a brute-force scan.  Correlation Maps must satisfy the same
invariant (both mechanisms remove their false positives by validation).

A second invariant guards the vectorized lookup path: for any predicate and
either pointer scheme, the array-native ``lookup_range`` / ``lookup_range_many``
pipeline must return exactly the same result set as the object-at-a-time seed
path kept as ``lookup_range_scalar``.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.correlation_maps import CorrelationMap
from repro.baselines.secondary import BaselineSecondaryIndex
from repro.core.config import TRSTreeConfig
from repro.core.hermit import HermitIndex
from repro.index.bptree import BPlusTree
from repro.storage.identifiers import PointerScheme
from repro.storage.schema import numeric_schema
from repro.storage.table import Table

SETTINGS = settings(max_examples=25, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])


def build_table(targets: list[float], hosts: list[float]) -> Table:
    table = Table(numeric_schema("t", ["pk", "host", "target"], primary_key="pk"))
    count = len(targets)
    table.insert_many({
        "pk": np.arange(count, dtype=np.float64),
        "host": np.asarray(hosts, dtype=np.float64),
        "target": np.asarray(targets, dtype=np.float64),
    })
    return table


def build_mechanisms(table: Table, scheme: PointerScheme):
    primary = BPlusTree()
    host_index = BPlusTree()
    slots, pks, hosts = table.project(["pk", "host"])
    primary.bulk_load((float(pk), int(s)) for pk, s in zip(pks, slots))
    tids = slots if scheme is PointerScheme.PHYSICAL else pks
    host_index.bulk_load((float(h), t.item()) for h, t in zip(hosts, tids))
    hermit = HermitIndex(table, "target", "host", host_index,
                         primary_index=primary, pointer_scheme=scheme,
                         config=TRSTreeConfig(min_split_size=8))
    hermit.build()
    baseline = BaselineSecondaryIndex(table, "target", primary_index=primary,
                                      pointer_scheme=scheme)
    baseline.build()
    domain = float(np.ptp(hosts)) if len(hosts) else 1.0
    cm = CorrelationMap(table, "target", "host", host_index,
                        target_bucket_width=max(1e-6, float(np.ptp(
                            table.column_array("target")) or 1.0) / 16),
                        host_bucket_width=max(1e-6, domain / 16 or 1.0),
                        primary_index=primary, pointer_scheme=scheme)
    cm.build()
    return hermit, baseline, cm


def brute_force(table: Table, low: float, high: float) -> set[int]:
    slots, targets = table.project(["target"])
    mask = (targets >= low) & (targets <= high)
    return {int(s) for s in slots[mask]}


correlated_data = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
        st.floats(min_value=-500.0, max_value=500.0, allow_nan=False),
        st.booleans(),
    ),
    min_size=5,
    max_size=300,
)

predicate_bounds = st.tuples(
    st.floats(min_value=-100.0, max_value=1100.0, allow_nan=False),
    st.floats(min_value=0.0, max_value=600.0, allow_nan=False),
)


class TestLookupEquivalence:
    @SETTINGS
    @given(correlated_data, predicate_bounds,
           st.sampled_from([PointerScheme.PHYSICAL, PointerScheme.LOGICAL]))
    def test_hermit_baseline_cm_and_scan_agree(self, rows, bounds, scheme):
        """All three mechanisms return exactly the brute-force answer."""
        targets = [t for t, _, _ in rows]
        hosts = [
            (3.0 * t - 7.0 + (noise if is_noisy else 0.0))
            for t, noise, is_noisy in rows
        ]
        table = build_table(targets, hosts)
        hermit, baseline, cm = build_mechanisms(table, scheme)
        low, width = bounds
        high = low + width
        expected = brute_force(table, low, high)
        assert set(hermit.lookup_range(low, high).locations) == expected
        assert set(baseline.lookup_range(low, high).locations) == expected
        assert set(cm.lookup_range(low, high).locations) == expected

    @SETTINGS
    @given(correlated_data)
    def test_point_lookups_agree_on_every_existing_value(self, rows):
        targets = [t for t, _, _ in rows]
        hosts = [2.0 * t + 1.0 + (n if flag else 0.0) for t, n, flag in rows]
        table = build_table(targets, hosts)
        hermit, baseline, _ = build_mechanisms(table, PointerScheme.PHYSICAL)
        for value in set(targets[:20]):
            expected = brute_force(table, value, value)
            assert set(hermit.lookup_point(value).locations) == expected
            assert set(baseline.lookup_point(value).locations) == expected


class TestScalarVectorizedEquivalence:
    """The vectorized path is a pure optimisation of the scalar seed path."""

    @SETTINGS
    @given(correlated_data, predicate_bounds,
           st.sampled_from([PointerScheme.PHYSICAL, PointerScheme.LOGICAL]))
    def test_range_lookup_paths_agree(self, rows, bounds, scheme):
        targets = [t for t, _, _ in rows]
        hosts = [
            (3.0 * t - 7.0 + (noise if is_noisy else 0.0))
            for t, noise, is_noisy in rows
        ]
        table = build_table(targets, hosts)
        hermit, baseline, _ = build_mechanisms(table, scheme)
        low, width = bounds
        high = low + width
        expected = brute_force(table, low, high)
        for mechanism in (hermit, baseline):
            scalar = set(mechanism.lookup_range_scalar(low, high).locations)
            vectorized = set(mechanism.lookup_range(low, high).locations)
            assert scalar == vectorized == expected

    @SETTINGS
    @given(correlated_data,
           st.sampled_from([PointerScheme.PHYSICAL, PointerScheme.LOGICAL]))
    def test_point_lookup_paths_agree(self, rows, scheme):
        targets = [t for t, _, _ in rows]
        hosts = [2.0 * t + 1.0 + (n if flag else 0.0) for t, n, flag in rows]
        table = build_table(targets, hosts)
        hermit, baseline, _ = build_mechanisms(table, scheme)
        for value in set(targets[:10]):
            expected = brute_force(table, value, value)
            for mechanism in (hermit, baseline):
                scalar = set(mechanism.lookup_range_scalar(value, value).locations)
                vectorized = set(mechanism.lookup_point(value).locations)
                assert scalar == vectorized == expected

    @SETTINGS
    @given(correlated_data,
           st.lists(predicate_bounds, min_size=1, max_size=5),
           st.sampled_from([PointerScheme.PHYSICAL, PointerScheme.LOGICAL]))
    def test_batch_api_matches_per_query_lookups(self, rows, bounds_list, scheme):
        targets = [t for t, _, _ in rows]
        hosts = [1.2 * t + 3.0 + (n if flag else 0.0) for t, n, flag in rows]
        table = build_table(targets, hosts)
        hermit, baseline, cm = build_mechanisms(table, scheme)
        predicates = [(low, low + width) for low, width in bounds_list]
        for mechanism in (hermit, baseline, cm):
            batch = mechanism.lookup_range_many(predicates)
            assert len(batch.locations_per_query) == len(predicates)
            for (low, high), locations in zip(predicates,
                                              batch.locations_per_query):
                assert set(locations) == brute_force(table, low, high)
            assert batch.breakdown.lookups == len(predicates)
            assert batch.total_results == sum(
                len(locations) for locations in batch.locations_per_query
            )


class TestMaintenanceEquivalence:
    @SETTINGS
    @given(
        correlated_data,
        st.lists(
            st.tuples(st.sampled_from(["insert", "delete"]),
                      st.floats(0.0, 1000.0, allow_nan=False),
                      st.floats(-2000.0, 2000.0, allow_nan=False)),
            max_size=40,
        ),
        predicate_bounds,
    )
    def test_equivalence_survives_maintenance(self, rows, operations, bounds):
        """Hermit stays exact through arbitrary insert/delete interleavings."""
        targets = [t for t, _, _ in rows]
        hosts = [1.5 * t + 2.0 + (n if flag else 0.0) for t, n, flag in rows]
        table = build_table(targets, hosts)
        hermit, baseline, _ = build_mechanisms(table, PointerScheme.PHYSICAL)
        host_index = hermit.host_index
        next_pk = 10_000.0
        live = [int(s) for s in table.live_slots()]

        for action, target_value, host_value in operations:
            if action == "insert":
                row = {"pk": next_pk, "host": host_value, "target": target_value}
                next_pk += 1
                location = int(table.insert(row))
                host_index.insert(host_value, location)
                hermit.insert(row, location)
                baseline.insert(row, location)
                live.append(location)
            elif live:
                location = live.pop(0)
                row = table.fetch(location)
                hermit.delete(row, location)
                baseline.delete(row, location)
                host_index.delete(row["host"], location)
                table.delete(location)

        low, width = bounds
        high = low + width
        expected = brute_force(table, low, high)
        assert set(hermit.lookup_range(low, high).locations) == expected
        assert set(baseline.lookup_range(low, high).locations) == expected
