"""Unit tests for correlation functions, discovery and the host advisor."""

import numpy as np
import pytest

from repro.correlation.advisor import HostColumnAdvisor
from repro.correlation.discovery import (
    CorrelationDiscoverer,
    pearson_coefficient,
    spearman_coefficient,
)
from repro.correlation.functions import (
    LinearFunction,
    PolynomialFunction,
    SigmoidFunction,
    SineFunction,
    inject_noise,
)
from repro.errors import CorrelationError
from repro.storage.schema import numeric_schema
from repro.storage.table import Table


class TestCorrelationFunctions:
    def test_linear(self):
        function = LinearFunction(slope=2.0, intercept=1.0)
        assert list(function(np.array([0.0, 1.0, 2.0]))) == [1.0, 3.0, 5.0]
        assert function.is_monotonic

    def test_sigmoid_monotonic_and_bounded(self):
        function = SigmoidFunction(midpoint=0.0, steepness=1.0, scale=10.0)
        values = function(np.linspace(-10, 10, 100))
        assert np.all(np.diff(values) >= 0)
        assert values.min() >= 0.0 and values.max() <= 10.0
        assert function.is_monotonic

    def test_sine_is_non_monotonic(self):
        function = SineFunction(amplitude=1.0, frequency=1.0)
        values = function(np.linspace(0, 10, 100))
        assert np.any(np.diff(values) < 0)
        assert not function.is_monotonic

    def test_polynomial(self):
        function = PolynomialFunction(coefficients=(1.0, 0.0, 2.0))
        assert list(function(np.array([0.0, 1.0, 2.0]))) == [1.0, 3.0, 9.0]
        assert not function.is_monotonic
        assert PolynomialFunction(coefficients=(0.0, 1.0)).is_monotonic


class TestInjectNoise:
    def test_fraction_of_values_perturbed(self):
        rng = np.random.default_rng(0)
        clean = np.zeros(1000)
        noisy, mask = inject_noise(clean, 0.1, noise_scale=10.0, rng=rng)
        assert mask.sum() == 100
        assert np.all(noisy[~mask] == 0.0)
        assert np.all(np.abs(noisy[mask]) >= 5.0)

    def test_zero_fraction_is_identity(self):
        rng = np.random.default_rng(0)
        clean = np.arange(10.0)
        noisy, mask = inject_noise(clean, 0.0, 1.0, rng)
        assert np.array_equal(noisy, clean)
        assert not mask.any()

    def test_empty_input(self):
        rng = np.random.default_rng(0)
        noisy, mask = inject_noise(np.array([]), 0.5, 1.0, rng)
        assert len(noisy) == 0 and len(mask) == 0

    def test_original_array_not_modified(self):
        rng = np.random.default_rng(0)
        clean = np.zeros(100)
        inject_noise(clean, 0.5, 10.0, rng)
        assert np.all(clean == 0.0)


class TestCoefficients:
    def test_pearson_perfect_linear(self):
        x = np.linspace(0, 10, 50)
        assert pearson_coefficient(x, 3 * x + 1) == pytest.approx(1.0)
        assert pearson_coefficient(x, -3 * x + 1) == pytest.approx(-1.0)

    def test_spearman_detects_monotonic_nonlinear(self):
        x = np.linspace(0.1, 10, 50)
        y = np.log(x)
        assert spearman_coefficient(x, y) == pytest.approx(1.0)
        assert pearson_coefficient(x, y) < 0.99

    def test_sine_has_low_spearman(self):
        x = np.linspace(0, 6 * np.pi, 500)
        assert abs(spearman_coefficient(x, np.sin(x))) < 0.3

    def test_constant_column_gives_zero(self):
        x = np.ones(10)
        y = np.arange(10.0)
        assert pearson_coefficient(x, y) == 0.0

    def test_length_mismatch_raises(self):
        with pytest.raises(CorrelationError):
            pearson_coefficient(np.arange(3.0), np.arange(4.0))
        with pytest.raises(CorrelationError):
            spearman_coefficient(np.arange(3.0), np.arange(4.0))

    def test_too_few_values_raises(self):
        with pytest.raises(CorrelationError):
            pearson_coefficient(np.array([1.0]), np.array([2.0]))

    def test_spearman_handles_ties(self):
        x = np.array([1.0, 1.0, 2.0, 3.0])
        y = np.array([1.0, 1.0, 2.0, 3.0])
        assert spearman_coefficient(x, y) == pytest.approx(1.0)


def correlated_table(count=1000, seed=0) -> Table:
    rng = np.random.default_rng(seed)
    schema = numeric_schema("t", ["pk", "a", "b", "c"], primary_key="pk")
    table = Table(schema)
    a = rng.uniform(0, 100, size=count)
    table.insert_many({
        "pk": np.arange(count, dtype=np.float64),
        "a": a,
        "b": 5 * a + 2,                      # strongly correlated with a
        "c": rng.uniform(0, 100, size=count),  # independent
    })
    return table


class TestDiscoverer:
    def test_measure(self):
        table = correlated_table()
        discoverer = CorrelationDiscoverer(sample_size=500)
        candidate = discoverer.measure(table, "a", "b")
        assert candidate.pearson == pytest.approx(1.0, abs=1e-6)
        assert candidate.is_monotonic

    def test_discover_finds_only_real_pairs(self):
        table = correlated_table()
        discoverer = CorrelationDiscoverer(threshold=0.9)
        pairs = {(c.target_column, c.host_column)
                 for c in discoverer.discover(table, ["a", "b", "c"])}
        assert ("a", "b") in pairs and ("b", "a") in pairs
        assert not any("c" in pair for pair in pairs)

    def test_empty_table_raises(self):
        table = Table(numeric_schema("t", ["pk", "a"], primary_key="pk"))
        with pytest.raises(CorrelationError):
            CorrelationDiscoverer().measure(table, "pk", "a")


class TestAdvisor:
    def test_recommends_hermit_for_correlated_host(self):
        table = correlated_table()
        advisor = HostColumnAdvisor()
        recommendation = advisor.recommend(table, "a", ["b", "c"])
        assert recommendation.use_hermit
        assert recommendation.host_column == "b"

    def test_rejects_uncorrelated_host(self):
        table = correlated_table()
        recommendation = HostColumnAdvisor().recommend(table, "a", ["c"])
        assert not recommendation.use_hermit
        assert recommendation.host_column is None

    def test_rejects_when_no_candidates(self):
        table = correlated_table()
        recommendation = HostColumnAdvisor().recommend(table, "a", [])
        assert not recommendation.use_hermit
        assert "no indexed columns" in recommendation.reason

    def test_rejects_non_monotonic_correlation(self):
        rng = np.random.default_rng(0)
        schema = numeric_schema("t", ["pk", "x", "y"], primary_key="pk")
        table = Table(schema)
        x = rng.uniform(0, 6 * np.pi, size=2000)
        table.insert_many({
            "pk": np.arange(2000, dtype=np.float64),
            "x": x,
            "y": np.sin(x),
        })
        recommendation = HostColumnAdvisor().recommend(table, "x", ["y"])
        assert not recommendation.use_hermit

    def test_target_excluded_from_candidates(self):
        table = correlated_table()
        recommendation = HostColumnAdvisor().recommend(table, "a", ["a"])
        assert not recommendation.use_hermit
