"""Tests for the searchsorted-backed sorted-column index."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import KeyNotFoundError, StorageError
from repro.index.base import Index, KeyRange
from repro.index.bptree import BPlusTree
from repro.index.sorted_column import SortedColumnIndex


def build(pairs) -> SortedColumnIndex:
    index = SortedColumnIndex()
    index.bulk_load(pairs)
    return index


class TestBulkLoadAndSearch:
    def test_point_search_finds_loaded_keys(self):
        index = build((float(i), i * 10) for i in range(100))
        assert index.search(42.0) == [420]
        assert index.search(999.0) == []
        assert index.num_entries == 100

    def test_duplicate_keys_accumulate(self):
        index = build([(1.0, 7), (1.0, 8), (2.0, 9)])
        assert sorted(index.search(1.0)) == [7, 8]

    def test_bulk_load_on_nonempty_raises(self):
        index = build([(1.0, 1)])
        with pytest.raises(StorageError):
            index.bulk_load([(2.0, 2)])
        with pytest.raises(StorageError):
            index.load_arrays(np.asarray([2.0]), np.asarray([2]))

    def test_load_arrays_rejects_mismatched_lengths(self):
        index = SortedColumnIndex()
        with pytest.raises(StorageError):
            index.load_arrays(np.asarray([1.0, 2.0]), np.asarray([1]))

    def test_bulk_load_empty(self):
        index = build([])
        assert index.num_entries == 0
        assert index.search(1.0) == []
        assert index.range_search(KeyRange(0.0, 10.0)) == []


class TestRangeSearch:
    def test_inclusive_bounds(self):
        index = build((float(i), i) for i in range(50))
        assert sorted(index.range_search(KeyRange(10.0, 20.0))) == list(range(10, 21))

    def test_range_search_array_is_contiguous_slice(self):
        index = build((float(i), i) for i in range(50))
        result = index.range_search_array(KeyRange(10.0, 20.0))
        assert isinstance(result, np.ndarray)
        assert result.tolist() == list(range(10, 21))

    def test_range_search_many_array_unions(self):
        index = build((float(i), i) for i in range(30))
        result = index.range_search_many_array([KeyRange(0, 2), KeyRange(10, 12)])
        assert sorted(result.tolist()) == [0, 1, 2, 10, 11, 12]

    def test_search_many_batches_point_probes(self):
        index = build([(1.0, 10), (1.0, 11), (3.0, 30), (9.0, 90)])
        result = index.search_many([1.0, 9.0, 555.0])
        assert sorted(result.tolist()) == [10, 11, 90]


class TestMaintenance:
    def test_insert_keeps_order(self):
        index = build([(1.0, 1), (5.0, 5)])
        index.insert(3.0, 3)
        assert index.range_search(KeyRange(0.0, 10.0)) == [1, 3, 5]

    def test_insert_fractional_logical_pointer(self):
        index = SortedColumnIndex()
        index.insert(1.0, 2.5)
        assert index.search(1.0) == [2.5]

    def test_delete_removes_single_pair(self):
        index = build([(1.0, 1), (1.0, 2)])
        index.delete(1.0, 1)
        assert index.search(1.0) == [2]
        assert index.num_entries == 1

    def test_delete_missing_raises(self):
        index = build([(1.0, 1)])
        with pytest.raises(KeyNotFoundError):
            index.delete(2.0, 1)
        with pytest.raises(KeyNotFoundError):
            index.delete(1.0, 99)


class TestAccounting:
    def test_memory_grows_with_entries(self):
        empty = SortedColumnIndex().memory_bytes()
        index = build((float(i), i) for i in range(1000))
        assert index.memory_bytes() > empty

    def test_items_sorted(self):
        index = build([(float(i % 7), i) for i in range(50)])
        keys = [key for key, _ in index.items()]
        assert keys == sorted(keys)
        assert len(keys) == 50

    def test_base_array_fallbacks_cover_default_indexes(self):
        """The Index base class serves arrays even without an override."""

        class MinimalIndex(BPlusTree):
            range_search_array = Index.range_search_array
            range_search_many_array = Index.range_search_many_array

        index = MinimalIndex()
        for i in range(10):
            index.insert(float(i), i)
        assert index.range_search_array(KeyRange(2.0, 4.0)).tolist() == [2, 3, 4]
        empty = index.range_search_array(KeyRange(50.0, 60.0))
        assert isinstance(empty, np.ndarray) and empty.size == 0


class TestAgainstBPlusTree:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 200), st.integers(0, 10_000)),
                    max_size=200),
           st.tuples(st.integers(-10, 210), st.integers(0, 100)))
    def test_matches_bptree_on_ranges(self, pairs, bounds):
        """Sorted-column and B+-tree agree on every probe, scalar and array."""
        sorted_index = SortedColumnIndex()
        tree = BPlusTree(node_capacity=4)
        sorted_index.bulk_load((float(k), v) for k, v in pairs)
        for key, value in pairs:
            tree.insert(float(key), value)
        low, width = bounds
        probe = KeyRange(float(low), float(low + width))
        assert sorted(sorted_index.range_search(probe)) == \
            sorted(tree.range_search(probe))
        assert sorted(sorted_index.range_search_array(probe).tolist()) == \
            sorted(tree.range_search_array(probe).tolist())
