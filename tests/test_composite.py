"""Tests for the composite (two-column) index and its planner integration.

Correctness of :class:`~repro.index.composite.CompositeIndex` is pinned
against a brute-force scan over random entry sets; the
:class:`~repro.index.composite.CompositeSecondaryIndex` adapter is exercised
through the database facade (DML maintenance, both pointer schemes) and as a
planner access path covering a two-column conjunctive predicate.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine.access_path import CompositePath
from repro.engine.database import Database
from repro.engine.query import RangePredicate, conjunction
from repro.errors import KeyNotFoundError, StorageError
from repro.index.base import KeyRange
from repro.index.composite import CompositeIndex
from repro.storage.identifiers import PointerScheme
from repro.storage.schema import numeric_schema

SETTINGS = settings(max_examples=20, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])

entries_strategy = st.lists(
    st.tuples(
        st.floats(min_value=-50.0, max_value=50.0, allow_nan=False),
        st.floats(min_value=-50.0, max_value=50.0, allow_nan=False),
    ),
    min_size=0, max_size=80,
)

bounds = st.tuples(
    st.floats(min_value=-60.0, max_value=60.0, allow_nan=False),
    st.floats(min_value=-60.0, max_value=60.0, allow_nan=False),
)


def brute_force(entries, leading_range: KeyRange,
                second_range: KeyRange) -> list[int]:
    return sorted(
        tid for tid, (leading, second) in enumerate(entries)
        if leading_range.contains(leading) and second_range.contains(second)
    )


class TestCompositeIndex:
    @SETTINGS
    @given(entries=entries_strategy, leading=bounds, second=bounds)
    def test_range_search_matches_brute_force(self, entries, leading, second):
        index = CompositeIndex()
        for tid, (lead, sec) in enumerate(entries):
            index.insert(lead, sec, tid)
        leading_range = KeyRange(*leading)
        second_range = KeyRange(*second)
        expected = brute_force(entries, leading_range, second_range)
        assert sorted(index.range_search(leading_range, second_range)) == expected
        found = index.range_search_array(leading_range, second_range)
        assert sorted(found.tolist()) == expected

    @SETTINGS
    @given(entries=entries_strategy)
    def test_bulk_load_equals_scalar_inserts(self, entries):
        scalar = CompositeIndex()
        bulk = CompositeIndex()
        for tid, (lead, sec) in enumerate(entries):
            scalar.insert(lead, sec, tid)
        bulk.bulk_load((lead, sec, tid)
                       for tid, (lead, sec) in enumerate(entries))
        assert list(bulk.items()) == list(scalar.items())
        assert bulk.num_entries == scalar.num_entries

    @SETTINGS
    @given(base=entries_strategy, batch=entries_strategy)
    def test_insert_many_equals_scalar_loop(self, base, batch):
        scalar = CompositeIndex()
        batched = CompositeIndex()
        for tid, (lead, sec) in enumerate(base):
            scalar.insert(lead, sec, tid)
            batched.insert(lead, sec, tid)
        for tid, (lead, sec) in enumerate(batch):
            scalar.insert(lead, sec, 1000 + tid)
        batched.insert_many([lead for lead, _ in batch],
                            [sec for _, sec in batch],
                            list(range(1000, 1000 + len(batch))))
        assert list(batched.items()) == list(scalar.items())

    def test_bulk_load_rejects_non_empty(self):
        index = CompositeIndex()
        index.insert(1.0, 2.0, 0)
        with pytest.raises(StorageError):
            index.bulk_load([(3.0, 4.0, 1)])

    def test_delete(self):
        index = CompositeIndex()
        index.insert(1.0, 2.0, 7)
        index.delete(1.0, 2.0, 7)
        assert index.num_entries == 0
        with pytest.raises(KeyNotFoundError):
            index.delete(1.0, 2.0, 7)

    def test_memory_accounting(self):
        index = CompositeIndex()
        for tid in range(100):
            index.insert(float(tid), float(-tid), tid)
        assert index.memory_bytes() > 0


def _make_database(scheme=PointerScheme.PHYSICAL, rows=600, seed=21):
    rng = np.random.default_rng(seed)
    schema = numeric_schema("t", ["pk", "a", "m", "payload"], primary_key="pk")
    database = Database(pointer_scheme=scheme)
    database.create_table(schema)
    database.insert_many("t", {
        "pk": np.arange(rows, dtype=np.float64),
        "a": rng.uniform(0.0, 100.0, size=rows),
        "m": rng.uniform(0.0, 100.0, size=rows),
        "payload": rng.uniform(size=rows),
    })
    database.create_composite_index("idx_am", "t", "a", "m")
    return database


def expected_slots(database, a_low, a_high, m_low, m_high) -> np.ndarray:
    table = database.table("t")
    slots, a_values, m_values = table.project(["a", "m"])
    mask = ((a_values >= a_low) & (a_values <= a_high)
            & (m_values >= m_low) & (m_values <= m_high))
    return np.sort(slots[mask])


class TestCompositeSecondaryIndex:
    @pytest.mark.parametrize("scheme", [PointerScheme.PHYSICAL,
                                        PointerScheme.LOGICAL])
    def test_planner_uses_composite_for_the_pair(self, scheme):
        database = _make_database(scheme)
        query = conjunction(RangePredicate("a", 10.0, 30.0),
                            RangePredicate("m", 40.0, 60.0))
        plan = database.explain("t", query)
        assert plan.used_index == "idx_am"
        assert isinstance(plan.paths[0], CompositePath)
        planned = database.query_conjunctive("t", query)
        assert np.array_equal(planned.locations,
                              expected_slots(database, 10.0, 30.0, 40.0, 60.0))

    def test_single_predicate_does_not_use_composite(self):
        database = _make_database()
        plan = database.explain("t", RangePredicate("a", 10.0, 30.0))
        assert plan.used_index is None  # composite cannot serve one column

    def test_query_with_rejects_composite(self):
        from repro.errors import QueryError
        database = _make_database(rows=20)
        with pytest.raises(QueryError, match="composite"):
            database.query_with("t", "idx_am", RangePredicate("a", 0.0, 50.0))

    def test_dml_maintains_composite(self):
        database = _make_database(rows=50)
        location = database.insert("t", {"pk": 1000.0, "a": 20.0, "m": 50.0,
                                         "payload": 0.5})
        query = conjunction(RangePredicate("a", 19.0, 21.0),
                            RangePredicate("m", 49.0, 51.0))
        assert int(location) in database.query_conjunctive("t", query).locations

        database.update("t", location, {"m": 90.0})
        assert int(location) not in database.query_conjunctive("t", query).locations
        moved = conjunction(RangePredicate("a", 19.0, 21.0),
                            RangePredicate("m", 89.0, 91.0))
        assert int(location) in database.query_conjunctive("t", moved).locations

        database.delete("t", location)
        assert int(location) not in database.query_conjunctive("t", moved).locations

    def test_insert_many_maintains_composite(self):
        database = _make_database(rows=50)
        locations = database.insert_many("t", {
            "pk": [2000.0, 2001.0],
            "a": [25.0, 26.0],
            "m": [55.0, 56.0],
            "payload": [0.1, 0.2],
        })
        query = conjunction(RangePredicate("a", 24.0, 27.0),
                            RangePredicate("m", 54.0, 57.0))
        found = database.query_conjunctive("t", query).locations
        assert set(locations) <= set(found.tolist())

    def test_rejects_duplicate_columns(self):
        database = _make_database(rows=10)
        from repro.errors import QueryError
        with pytest.raises(QueryError):
            database.create_composite_index("idx_bad", "t", "a", "a")

    def test_memory_report_includes_composite(self):
        database = _make_database(rows=100)
        report = database.memory_report("t")
        assert report.components["new_indexes"] > 0
