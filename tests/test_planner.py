"""Unit and integration tests for the planner subsystem.

Covers the query model (ConjunctiveQuery merging), the catalog statistics,
cost-based path selection (complete index over Hermit, sorted column over
B+-tree, composite over single-column pairs, scan when nothing covers),
plan caching/invalidation, and end-to-end correctness of planned conjunctive
queries against a brute-force scan under both pointer schemes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.access_path import CompositePath, FullScanPath, MechanismPath
from repro.engine.catalog import ColumnStats, IndexMethod
from repro.engine.database import Database
from repro.engine.query import ConjunctiveQuery, RangePredicate, conjunction
from repro.errors import QueryError
from repro.index.base import KeyRange
from repro.storage.identifiers import PointerScheme
from repro.workloads.synthetic import generate_synthetic, load_synthetic


class TestConjunctiveQuery:
    def test_requires_predicates(self):
        with pytest.raises(QueryError):
            ConjunctiveQuery([])

    def test_merges_same_column(self):
        query = conjunction(RangePredicate("x", 0.0, 10.0),
                            RangePredicate("x", 5.0, 20.0))
        merged = query.merged()
        assert merged == {"x": KeyRange(5.0, 10.0)}

    def test_disjoint_same_column_is_unsatisfiable(self):
        query = conjunction(RangePredicate("x", 0.0, 1.0),
                            RangePredicate("x", 2.0, 3.0))
        assert query.merged() is None

    def test_columns_keep_first_appearance_order(self):
        query = conjunction(RangePredicate("b", 0.0, 1.0),
                            RangePredicate("a", 0.0, 1.0),
                            RangePredicate("b", 0.5, 2.0))
        assert query.columns == ["b", "a"]
        assert len(query) == 3


class TestColumnStats:
    def test_uniform_selectivity(self):
        stats = ColumnStats(1000, 0.0, 100.0)
        assert stats.selectivity(KeyRange(0.0, 10.0)) == pytest.approx(0.1)
        assert stats.selectivity(KeyRange(200.0, 300.0)) == 0.0
        assert stats.estimated_rows(KeyRange(0.0, 50.0)) == pytest.approx(500)

    def test_point_floors_at_one_row(self):
        stats = ColumnStats(1000, 0.0, 100.0)
        assert stats.selectivity(KeyRange(5.0, 5.0)) == pytest.approx(1e-3)

    def test_no_observations_falls_back_to_default(self):
        stats = ColumnStats(1000, float("inf"), float("-inf"))
        assert not stats.has_range
        assert 0.0 < stats.selectivity(KeyRange(0.0, 1.0)) < 1.0

    def test_degenerate_domain(self):
        stats = ColumnStats(10, 5.0, 5.0)
        assert stats.selectivity(KeyRange(0.0, 10.0)) == 1.0
        assert stats.selectivity(KeyRange(6.0, 7.0)) == 0.0


@pytest.fixture(scope="module")
def planner_db():
    """Synthetic table with Hermit + B+-tree on colC and sorted on colD."""
    dataset = generate_synthetic(8000, "linear", noise_fraction=0.01, seed=11)
    database = Database()
    table_name = load_synthetic(database, dataset)
    database.create_index("idx_colC_hermit", table_name, "colC",
                          method=IndexMethod.HERMIT, host_column="colB")
    database.create_index("idx_colC_btree", table_name, "colC",
                          method=IndexMethod.BTREE)
    database.create_index("idx_colD_sorted", table_name, "colD",
                          method=IndexMethod.SORTED_COLUMN)
    return database, table_name


def brute_force(database, table_name, predicates) -> np.ndarray:
    table = database.table(table_name)
    columns = [predicate.column for predicate in predicates]
    projected = table.project(columns)
    slots = projected[0]
    mask = np.ones(slots.shape, dtype=bool)
    for predicate, values in zip(predicates, projected[1:]):
        mask &= (values >= predicate.low) & (values <= predicate.high)
    return np.sort(slots[mask])


class TestPlanSelection:
    def test_prefers_complete_index_over_hermit(self, planner_db):
        database, table_name = planner_db
        plan = database.explain(table_name,
                                RangePredicate("colC", 0.0, 20_000.0))
        assert plan.used_index == "idx_colC_btree"
        assert not plan.is_full_scan

    def test_point_lookup_prefers_complete_index(self, planner_db):
        database, table_name = planner_db
        plan = database.explain(table_name,
                                RangePredicate("colC", 5_000.0, 5_000.0))
        assert plan.used_index == "idx_colC_btree"

    def test_sorted_column_is_chosen_on_its_column(self, planner_db):
        database, table_name = planner_db
        plan = database.explain(table_name, RangePredicate("colD", 0.1, 0.11))
        assert plan.used_index == "idx_colD_sorted"

    def test_no_index_falls_back_to_scan(self, planner_db):
        database, table_name = planner_db
        plan = database.explain(table_name,
                                RangePredicate("colA", 0.0, 100.0))
        assert plan.used_index is None
        assert plan.is_full_scan

    def test_unselective_predicate_scans(self, planner_db):
        database, table_name = planner_db
        plan = database.explain(table_name,
                                RangePredicate("colC", 0.0, 999_999.0))
        assert plan.is_full_scan

    def test_conjunctive_drives_with_most_selective_column(self, planner_db):
        database, table_name = planner_db
        plan = database.explain(table_name, conjunction(
            RangePredicate("colC", 0.0, 5_000.0),       # narrow
            RangePredicate("colB", 0.0, 1_500_000.0),   # wide
        ))
        assert plan.used_index == "idx_colC_btree"
        plan = database.explain(table_name, conjunction(
            RangePredicate("colC", 0.0, 800_000.0),     # wide
            RangePredicate("colB", 0.0, 15_000.0),      # narrow
        ))
        assert plan.used_index == "idx_colB"

    def test_describe_names_every_path(self, planner_db):
        database, table_name = planner_db
        plan = database.explain(table_name, conjunction(
            RangePredicate("colC", 0.0, 5_000.0),
            RangePredicate("colB", 0.0, 1_500_000.0),
        ))
        explained = plan.describe()
        assert "drive" in explained
        assert "validate" in explained
        assert plan.used_index in explained

    def test_unsatisfiable_plan(self, planner_db):
        database, table_name = planner_db
        plan = database.explain(table_name, conjunction(
            RangePredicate("colC", 0.0, 1.0),
            RangePredicate("colC", 2.0, 3.0),
        ))
        assert plan.unsatisfiable
        assert "unsatisfiable" in plan.describe()


class TestPlanCache:
    def test_same_shape_query_replays_cached_plan(self, planner_db):
        database, table_name = planner_db
        first = database.explain(table_name,
                                 RangePredicate("colC", 0.0, 10_000.0))
        second = database.explain(table_name,
                                  RangePredicate("colC", 40_000.0, 50_000.0))
        assert second.used_index == first.used_index
        # The replayed plan is bound to the *new* predicate range.
        path = second.paths[0]
        assert path.key_range == KeyRange(40_000.0, 50_000.0)

    def test_index_ddl_invalidates_cache(self):
        dataset = generate_synthetic(3000, "linear", noise_fraction=0.01,
                                     seed=12)
        database = Database()
        table_name = load_synthetic(database, dataset)
        database.create_index("idx_c_hermit", table_name, "colC",
                              method=IndexMethod.HERMIT, host_column="colB")
        predicate = RangePredicate("colC", 0.0, 10_000.0)
        assert database.explain(table_name, predicate).used_index == "idx_c_hermit"
        database.create_index("idx_c_btree", table_name, "colC",
                              method=IndexMethod.BTREE)
        assert database.explain(table_name, predicate).used_index == "idx_c_btree"
        database.drop_index(table_name, "idx_c_btree")
        assert database.explain(table_name, predicate).used_index == "idx_c_hermit"

    def test_selectivity_bucket_change_replans(self, planner_db):
        database, table_name = planner_db
        narrow = database.explain(table_name,
                                  RangePredicate("colC", 0.0, 2_000.0))
        wide = database.explain(table_name,
                                RangePredicate("colC", 0.0, 999_999.0))
        assert not narrow.is_full_scan
        assert wide.is_full_scan


class TestPlannedExecution:
    @pytest.mark.parametrize("scheme", [PointerScheme.PHYSICAL,
                                        PointerScheme.LOGICAL])
    def test_conjunctive_matches_brute_force(self, scheme):
        dataset = generate_synthetic(4000, "linear", noise_fraction=0.02,
                                     seed=13)
        database = Database(pointer_scheme=scheme)
        table_name = load_synthetic(database, dataset)
        database.create_index("idx_colC", table_name, "colC",
                              method=IndexMethod.HERMIT, host_column="colB")
        cases = [
            [RangePredicate("colC", 100_000.0, 200_000.0)],
            [RangePredicate("colC", 0.0, 50_000.0),
             RangePredicate("colB", 0.0, 80_000.0)],
            [RangePredicate("colC", 100_000.0, 400_000.0),
             RangePredicate("colD", 0.2, 0.7)],
            [RangePredicate("colB", 0.0, 300_000.0),
             RangePredicate("colC", 100_000.0, 120_000.0),
             RangePredicate("colD", 0.0, 0.9)],
        ]
        for predicates in cases:
            planned = database.query_conjunctive(table_name, predicates)
            expected = brute_force(database, table_name, predicates)
            assert np.array_equal(planned.locations, expected), predicates
            assert planned.locations.dtype == np.int64

    def test_result_is_sorted_unique_array(self, planner_db):
        database, table_name = planner_db
        planned = database.query_conjunctive(
            table_name, [RangePredicate("colC", 0.0, 100_000.0)]
        )
        locations = planned.locations
        assert isinstance(locations, np.ndarray)
        assert np.all(np.diff(locations) > 0)

    def test_unsatisfiable_returns_empty(self, planner_db):
        database, table_name = planner_db
        planned = database.query_conjunctive(table_name, conjunction(
            RangePredicate("colC", 0.0, 1.0),
            RangePredicate("colC", 5.0, 6.0),
        ))
        assert len(planned) == 0
        assert planned.locations.dtype == np.int64

    def test_single_predicate_accepted_directly(self, planner_db):
        database, table_name = planner_db
        predicate = RangePredicate("colC", 0.0, 50_000.0)
        direct = database.query_conjunctive(table_name, predicate)
        wrapped = database.query_conjunctive(table_name, [predicate])
        assert np.array_equal(direct.locations, wrapped.locations)

    def test_planned_queries_feed_mechanism_observation(self):
        """Single-mechanism plans update the mechanism's cumulative stats.

        The observed false-positive ratio drives ``estimate_candidates``,
        so planner-routed queries must record it like ``lookup_range`` does
        — otherwise a leaky Hermit index would be priced at the default
        ratio forever.
        """
        dataset = generate_synthetic(3000, "linear", noise_fraction=0.02,
                                     seed=15)
        database = Database()
        table_name = load_synthetic(database, dataset)
        entry = database.create_index("idx_c", table_name, "colC",
                                      method=IndexMethod.HERMIT,
                                      host_column="colB")
        assert entry.mechanism.cumulative.candidates == 0
        database.query_conjunctive(
            table_name, RangePredicate("colC", 0.0, 200_000.0)
        )
        assert entry.mechanism.cumulative.lookups == 1
        assert entry.mechanism.cumulative.candidates > 0

    def test_validate_only_rejections_do_not_pollute_observation(self):
        """Rows rejected by an uncovered predicate are not the mechanism's FPs."""
        dataset = generate_synthetic(3000, "linear", noise_fraction=0.02,
                                     seed=15)
        database = Database()
        table_name = load_synthetic(database, dataset)
        entry = database.create_index("idx_c", table_name, "colC",
                                      method=IndexMethod.HERMIT,
                                      host_column="colB")
        database.query_conjunctive(table_name, conjunction(
            RangePredicate("colC", 0.0, 200_000.0),
            RangePredicate("colD", 0.0, 1e-9),   # rejects nearly everything
        ))
        # The plan covered only colC with the Hermit path, so the colD
        # rejections must not be booked as Hermit false positives.
        assert entry.mechanism.cumulative.candidates == 0

    def test_plan_cache_replay_bound_triggers_replan(self):
        """A cached plan is repriced after its replay bound."""
        from repro.engine.planner import _MAX_PLAN_REPLAYS

        dataset = generate_synthetic(3000, "linear", noise_fraction=0.02,
                                     seed=16)
        database = Database()
        table_name = load_synthetic(database, dataset)
        database.create_index("idx_c", table_name, "colC",
                              method=IndexMethod.HERMIT, host_column="colB")
        predicate = RangePredicate("colC", 0.0, 100_000.0)
        first = database.explain(table_name, predicate)

        def cache_entry():
            entries = [cached for key, cached in
                       database.planner._cache.items()
                       if key[:2] == (table_name, ("colC",))]
            assert len(entries) == 1
            return entries[0]

        cached = cache_entry()
        for _ in range(_MAX_PLAN_REPLAYS + 1):
            database.explain(table_name, predicate)
        assert cache_entry() is not cached  # a fresh template was planned
        assert database.explain(table_name, predicate).used_index == \
            first.used_index

    def test_alternating_query_shapes_each_hit_their_own_slot(self):
        dataset = generate_synthetic(3000, "linear", noise_fraction=0.02,
                                     seed=17)
        database = Database()
        table_name = load_synthetic(database, dataset)
        database.create_index("idx_c", table_name, "colC",
                              method=IndexMethod.BTREE)
        calls = 0
        original = database.planner._plan_fresh

        def counting(*args, **kwargs):
            nonlocal calls
            calls += 1
            return original(*args, **kwargs)

        database.planner._plan_fresh = counting
        for _ in range(10):
            database.explain(table_name,
                             RangePredicate("colC", 0.0, 100_000.0))
            database.explain(table_name,
                             RangePredicate("colC", 5_000.0, 5_000.0))
        assert calls == 2  # one fresh plan per shape, the rest replayed

    def test_scan_plan_skips_revalidation(self, planner_db):
        """A scan already applied every predicate; candidates == results."""
        database, table_name = planner_db
        planned = database.query_conjunctive(
            table_name, RangePredicate("colA", 0.0, 100.0)
        )
        assert planned.plan.is_full_scan
        assert planned.breakdown.candidates == planned.breakdown.results

    def test_breakdown_phases_are_charged(self, planner_db):
        database, table_name = planner_db
        planned = database.query_conjunctive(
            table_name, [RangePredicate("colC", 0.0, 100_000.0)]
        )
        assert planned.breakdown.lookups == 1
        assert planned.breakdown.candidates >= planned.breakdown.results
        assert planned.breakdown.results == len(planned)
        assert planned.breakdown.host_index_seconds > 0

    def test_legacy_query_routes_through_planner(self, planner_db):
        database, table_name = planner_db
        predicate = RangePredicate("colC", 0.0, 100_000.0)
        result = database.query(table_name, predicate)
        assert result.used_index == "idx_colC_btree"
        expected = brute_force(database, table_name, [predicate])
        assert result.locations == expected.tolist()

    def test_intersection_under_logical_pointers(self):
        """Selective predicates on two indexed columns intersect tid sets."""
        dataset = generate_synthetic(20_000, "linear", noise_fraction=0.01,
                                     seed=14)
        database = Database(pointer_scheme=PointerScheme.LOGICAL)
        table_name = load_synthetic(database, dataset)
        database.create_index("idx_colC", table_name, "colC",
                              method=IndexMethod.HERMIT, host_column="colB")
        # Each predicate alone matches far more rows than the conjunction
        # (the colB window covers only the top of the colC window's image),
        # so probing the host index costs less than resolving the Hermit
        # candidates it strips — the regime where intersection pays.
        predicates = [RangePredicate("colC", 100_000.0, 150_000.0),
                      RangePredicate("colB", 280_000.0, 360_000.0)]
        plan = database.explain(table_name, predicates)
        assert len(plan.paths) == 2  # Hermit driver + host-index intersect
        path_kinds = {path.entry.method for path in plan.paths}
        assert path_kinds == {IndexMethod.HERMIT, IndexMethod.BTREE}
        planned = database.query_conjunctive(table_name, predicates)
        expected = brute_force(database, table_name, predicates)
        assert np.array_equal(planned.locations, expected)


class TestAccessPathRebind:
    def test_mechanism_rebind_keeps_estimates(self, planner_db):
        database, table_name = planner_db
        entry = database.catalog.indexes_on_column(table_name, "colC")[0]
        stats = database.catalog.column_stats(table_name, "colC")
        path = MechanismPath(entry, KeyRange(0.0, 10_000.0), stats)
        clone = path.rebind({"colC": KeyRange(1.0, 2.0)})
        assert clone.key_range == KeyRange(1.0, 2.0)
        assert clone.estimated_cost() == path.estimated_cost()
        assert clone.entry is entry

    def test_scan_rebind_covers_new_predicates(self, planner_db):
        database, table_name = planner_db
        table = database.table(table_name)
        path = FullScanPath(table, {"colC": KeyRange(0.0, 1.0)})
        clone = path.rebind({"colC": KeyRange(5.0, 6.0),
                             "colD": KeyRange(0.0, 0.5)})
        assert clone.columns == ("colC", "colD")
        assert clone.produces_locations


class TestPointFastPath:
    """Single-column point probes replay off the (table, column) pointer."""

    def build(self, rows: int = 3000, seed: int = 21):
        dataset = generate_synthetic(rows, "linear", noise_fraction=0.02,
                                     seed=seed)
        database = Database()
        table_name = load_synthetic(database, dataset)
        database.create_index("idx_c", table_name, "colC",
                              method=IndexMethod.BTREE)
        return database, table_name

    def test_point_probes_skip_stats_after_first_plan(self):
        database, table_name = self.build()
        stats_calls = 0
        original = database.catalog.column_stats

        def counting(*args, **kwargs):
            nonlocal stats_calls
            stats_calls += 1
            return original(*args, **kwargs)

        database.catalog.column_stats = counting
        database.explain(table_name, RangePredicate("colC", 10.0, 10.0))
        after_first = stats_calls
        for value in (20.0, 30.0, -1e9, 40.0):  # out-of-domain too
            database.explain(table_name,
                             RangePredicate("colC", value, value))
        # The fast path bypasses the stats lookup entirely.
        assert stats_calls == after_first

    def test_fast_path_binds_each_new_point(self):
        database, table_name = self.build()
        database.explain(table_name, RangePredicate("colC", 100.0, 100.0))
        replayed = database.explain(table_name,
                                    RangePredicate("colC", 250.0, 250.0))
        assert replayed.paths[0].key_range == KeyRange(250.0, 250.0)

    def test_fast_path_results_match_brute_force(self):
        database, table_name = self.build()
        values = database.table(table_name).project(["colC"])[1][:5]
        for value in values:
            predicate = RangePredicate("colC", float(value), float(value))
            planned = database.query_conjunctive(table_name, predicate)
            expected = brute_force(database, table_name, [predicate])
            assert np.array_equal(planned.locations, expected)

    def test_ddl_invalidates_point_pointer(self):
        database, table_name = self.build()
        predicate = RangePredicate("colC", 50.0, 50.0)
        assert database.explain(table_name, predicate).used_index == "idx_c"
        database.create_index("idx_c_sorted", table_name, "colC",
                              method=IndexMethod.SORTED_COLUMN)
        # The stale pointer must not replay the dropped-ranked plan.
        assert database.explain(table_name, predicate).used_index \
            == "idx_c_sorted"


class TestEpochDriftInvalidation:
    def test_cached_plan_repriced_after_epoch_drift(self):
        """Enough committed write epochs force a replan, even when the
        row-count window alone would keep the cached plan fresh."""
        from repro.engine.planner import _MAX_EPOCH_DRIFT

        dataset = generate_synthetic(3000, "linear", noise_fraction=0.02,
                                     seed=22)
        database = Database()
        table_name = load_synthetic(database, dataset)
        database.create_index("idx_c", table_name, "colC",
                              method=IndexMethod.BTREE)
        predicate = RangePredicate("colC", 0.0, 50_000.0)
        database.explain(table_name, predicate)
        before = database.planner.cache_info().misses

        # Single-row inserts: negligible row-count change, one epoch each.
        table = database.table(table_name)
        start_pk = int(table.project(["colA"])[1].max()) + 1
        for offset in range(_MAX_EPOCH_DRIFT + 1):
            database.insert_many(table_name, {
                "colA": np.array([float(start_pk + offset)]),
                "colB": np.array([1.0]),
                "colC": np.array([1.0]),
                "colD": np.array([0.5]),
            })

        database.explain(table_name, predicate)
        assert database.planner.cache_info().misses == before + 1

    def test_fresh_within_drift_bound(self):
        dataset = generate_synthetic(3000, "linear", noise_fraction=0.02,
                                     seed=23)
        database = Database()
        table_name = load_synthetic(database, dataset)
        database.create_index("idx_c", table_name, "colC",
                              method=IndexMethod.BTREE)
        predicate = RangePredicate("colC", 0.0, 50_000.0)
        database.explain(table_name, predicate)
        before = database.planner.cache_info().misses
        database.insert_many(table_name, {
            "colA": np.array([99_999_999.0]), "colB": np.array([1.0]),
            "colC": np.array([1.0]), "colD": np.array([0.5]),
        })
        database.explain(table_name, predicate)
        assert database.planner.cache_info().misses == before  # still cached
