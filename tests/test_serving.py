"""Concurrency tests for the serving front end (``pytest -m serving``).

Three layers, bottom up:

* **EpochManager** — the reader-writer protocol in isolation: shared
  reads, exclusive writes, per-thread reentrancy, writer preference, the
  read-to-write upgrade rejection, and one-epoch-per-outermost-write.
* **No torn reads** — a writer thread mutates the database in all-or-
  nothing batches while reader threads hammer coalesced and per-call
  reads; every observed result must correspond to a batch boundary, never
  a half-applied mutation.
* **Server equivalence** — hypothesis drives random request batches
  through a live :class:`~repro.serving.Server` and through
  ``Database.query_many``; the two must agree result list by result list.
  Plus unit coverage for the coalescing window adaptation,
  :class:`RequestFuture` semantics, close/shutdown behaviour, and the
  ``query_with`` deprecation shim.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import TimeoutError as FutureTimeoutError

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine.catalog import IndexMethod
from repro.engine.database import Database
from repro.engine.query import QueryRequest, QueryResult, RangePredicate
from repro.errors import (
    CatalogError,
    ConcurrencyError,
    ConfigurationError,
    ServingError,
)
from repro.engine.epochs import EpochManager
from repro.serving import RequestFuture, Server, ServerConfig
from repro.storage.schema import numeric_schema

pytestmark = pytest.mark.serving

SETTINGS = settings(max_examples=10, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])


def build_database(rows: int = 2_000, seed: int = 7) -> tuple[Database, str]:
    """A (pk, host, target, payload) table with a sorted index on target."""
    rng = np.random.default_rng(seed)
    target = rng.uniform(0.0, 1_000.0, size=rows)
    database = Database()
    database.create_table(numeric_schema(
        "t", ["pk", "host", "target", "payload"], primary_key="pk"))
    database.insert_many("t", {
        "pk": np.arange(rows, dtype=np.float64),
        "host": 2.0 * target + 10.0,
        "target": target,
        "payload": rng.uniform(0.0, 1.0, size=rows),
    })
    database.create_index("idx_target", "t", "target",
                          method=IndexMethod.SORTED_COLUMN)
    return database, "t"


class TestEpochManager:
    def test_read_yields_current_epoch_and_write_bumps(self):
        epochs = EpochManager()
        with epochs.read() as epoch:
            assert epoch == 0
        with epochs.write() as epoch:
            assert epoch == 1  # the epoch this write commits as
        assert epochs.current == 1
        with epochs.read() as epoch:
            assert epoch == 1

    def test_nested_write_bumps_once(self):
        epochs = EpochManager()
        with epochs.write():
            with epochs.write():
                pass
            assert epochs.current == 0  # still inside the outermost write
        assert epochs.current == 1

    def test_read_inside_write_is_free(self):
        epochs = EpochManager()
        with epochs.write() as write_epoch:
            with epochs.read() as read_epoch:
                # The writer reads its own in-progress state.
                assert read_epoch == write_epoch - 1

    def test_upgrade_raises_concurrency_error(self):
        epochs = EpochManager()
        with epochs.read():
            with pytest.raises(ConcurrencyError):
                with epochs.write():
                    pass
        # The failed upgrade must not leave the manager wedged.
        with epochs.write():
            pass
        assert epochs.current == 1

    def test_write_excludes_reads(self):
        epochs = EpochManager()
        observed: list[int] = []
        release = threading.Event()
        in_write = threading.Event()

        def writer():
            with epochs.write():
                in_write.set()
                release.wait(timeout=5.0)

        def reader():
            with epochs.read() as epoch:
                observed.append(epoch)

        writer_thread = threading.Thread(target=writer)
        writer_thread.start()
        assert in_write.wait(timeout=5.0)
        reader_thread = threading.Thread(target=reader)
        reader_thread.start()
        time.sleep(0.02)
        assert observed == []  # reader is blocked behind the writer
        release.set()
        writer_thread.join(timeout=5.0)
        reader_thread.join(timeout=5.0)
        assert observed == [1]  # reader ran after the commit, sees epoch 1

    def test_waiting_writer_blocks_new_readers(self):
        epochs = EpochManager()
        sequence: list[str] = []
        reader_in = threading.Event()
        release_reader = threading.Event()

        def long_reader():
            with epochs.read():
                reader_in.set()
                release_reader.wait(timeout=5.0)

        def writer():
            with epochs.write():
                sequence.append("write")

        def late_reader():
            with epochs.read():
                sequence.append("read")

        first = threading.Thread(target=long_reader)
        first.start()
        assert reader_in.wait(timeout=5.0)
        writer_thread = threading.Thread(target=writer)
        writer_thread.start()
        time.sleep(0.02)  # let the writer reach the wait queue
        late = threading.Thread(target=late_reader)
        late.start()
        time.sleep(0.02)
        release_reader.set()
        for thread in (first, writer_thread, late):
            thread.join(timeout=5.0)
        # Writer preference: the queued writer beat the late reader.
        assert sequence == ["write", "read"]


class TestNoTornReads:
    def test_writer_interleaving_never_tears_coalesced_reads(self):
        """All-or-nothing batches stay all-or-nothing under concurrency.

        The writer appends rows in batches of a fixed size with a marker
        value on the indexed column; a torn read (table updated, index
        not, or a batch half-visible) would surface as a marker count
        that is not a multiple of the batch size.
        """
        database, table = build_database(rows=1_000)
        batch = 50
        marker = 5_000.0  # outside the initial target domain
        stop = threading.Event()
        failures: list[str] = []

        def writer():
            pk = 1_000
            for _ in range(20):
                database.insert_many(table, {
                    "pk": np.arange(pk, pk + batch, dtype=np.float64),
                    "host": np.full(batch, marker * 2.0),
                    "target": np.full(batch, marker),
                    "payload": np.zeros(batch),
                })
                pk += batch
                time.sleep(0.001)
            stop.set()

        request = QueryRequest.point(table, "target", marker)

        def reader():
            while not stop.is_set():
                results = database.execute_many([request] * 4)
                epochs = {result.epoch for result in results}
                if len(epochs) != 1:
                    failures.append(f"batch spanned epochs {epochs}")
                counts = {len(result.locations) for result in results}
                if len(counts) != 1:
                    failures.append(f"batch disagreed on counts {counts}")
                count = counts.pop()
                if count % batch != 0:
                    failures.append(f"torn read: {count} marker rows")

        readers = [threading.Thread(target=reader) for _ in range(3)]
        writer_thread = threading.Thread(target=writer)
        for thread in readers:
            thread.start()
        writer_thread.start()
        writer_thread.join(timeout=30.0)
        for thread in readers:
            thread.join(timeout=30.0)
        assert not failures, failures[:5]
        final = database.execute(request)
        assert len(final.locations) == 20 * batch

    def test_server_reads_stay_consistent_under_writes(self):
        """Coalesced server reads under a concurrent writer never tear."""
        database, table = build_database(rows=1_000)
        batch = 40
        marker = 5_000.0
        request = QueryRequest.point(table, "target", marker)
        with Server(database, ServerConfig()) as server:
            futures = []
            pk = 1_000
            for _ in range(15):
                futures.extend(server.submit(request) for _ in range(8))
                database.insert_many(table, {
                    "pk": np.arange(pk, pk + batch, dtype=np.float64),
                    "host": np.full(batch, marker * 2.0),
                    "target": np.full(batch, marker),
                    "payload": np.zeros(batch),
                })
                pk += batch
            counts = [len(future.result(timeout=30.0).locations)
                      for future in futures]
        assert all(count % batch == 0 for count in counts), counts
        assert len(database.execute(request).locations) == 15 * batch


class TestServerEquivalence:
    DATABASE, TABLE = build_database()

    @staticmethod
    @st.composite
    def request_batches(draw):
        """Mixed point/range batches on the indexed column."""
        count = draw(st.integers(min_value=1, max_value=12))
        requests = []
        for _ in range(count):
            low = draw(st.floats(min_value=-50.0, max_value=1_050.0,
                                 allow_nan=False))
            if draw(st.booleans()):
                requests.append(QueryRequest.point(
                    TestServerEquivalence.TABLE, "target", low))
            else:
                width = draw(st.floats(min_value=0.0, max_value=200.0,
                                       allow_nan=False))
                requests.append(QueryRequest.range(
                    TestServerEquivalence.TABLE, "target", low, low + width))
        return requests

    @SETTINGS
    @given(requests=request_batches())
    def test_server_matches_query_many(self, requests):
        database = self.DATABASE
        expected = database.execute_many(requests)
        with Server(database, ServerConfig()) as server:
            futures = [server.submit(request) for request in requests]
            actual = [future.result(timeout=30.0) for future in futures]
        for want, got in zip(expected, actual):
            assert want.locations == got.locations
            assert want.used_index == got.used_index

    def test_server_query_convenience(self):
        request = QueryRequest.range(self.TABLE, "target", 100.0, 120.0)
        with Server(self.DATABASE) as server:
            result = server.query(request, timeout=30.0)
        assert result.locations == self.DATABASE.execute(request).locations

    def test_batch_failure_propagates_to_futures(self):
        with Server(self.DATABASE) as server:
            future = server.submit(QueryRequest.point("no_such_table",
                                                      "target", 1.0))
            assert future.exception(timeout=30.0) is not None
            with pytest.raises(CatalogError):
                future.result(timeout=30.0)

    def test_requests_coalesce_into_shared_plan_groups(self):
        request = QueryRequest.point(self.TABLE, "target", 250.0)
        # A long window so every submission lands in one flush.
        config = ServerConfig(initial_window=0.05, min_window=0.05,
                              max_window=0.05)
        with Server(self.DATABASE, config) as server:
            futures = [server.submit(request) for _ in range(16)]
            results = [future.result(timeout=30.0) for future in futures]
            stats = server.stats()
        assert stats.batches == 1
        assert stats.max_batch == 16
        assert all(result.group_size == 16 for result in results)

    def test_submit_after_close_raises(self):
        server = Server(self.DATABASE)
        server.close()
        with pytest.raises(ServingError):
            server.submit(QueryRequest.point(self.TABLE, "target", 1.0))
        server.close()  # idempotent


class TestWindowAdaptation:
    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            ServerConfig(min_window=0.01, initial_window=0.001)
        with pytest.raises(ConfigurationError):
            ServerConfig(max_batch=0)
        with pytest.raises(ConfigurationError):
            ServerConfig(grow_factor=0.5)

    def test_window_grows_under_load_and_shrinks_when_idle(self):
        database, table = build_database(rows=500)
        config = ServerConfig(initial_window=0.001, min_window=0.0005,
                              max_window=0.008, target_batch=4)
        request = QueryRequest.point(table, "target", 1.0)
        with Server(database, config) as server:
            # Saturating burst: flushes at or above target grow the window.
            futures = [server.submit(request) for _ in range(64)]
            for future in futures:
                future.result(timeout=30.0)
            grown = server.stats().window
            assert grown > config.initial_window
            # Idle trickle: single-request flushes shrink it back down.
            for _ in range(12):
                server.query(request, timeout=30.0)
                time.sleep(0.02)
            shrunk = server.stats().window
        assert shrunk < grown
        assert shrunk >= config.min_window

    def test_window_respects_bounds(self):
        database, table = build_database(rows=500)
        config = ServerConfig(initial_window=0.0005, min_window=0.0004,
                              max_window=0.001, target_batch=2)
        request = QueryRequest.point(table, "target", 1.0)
        with Server(database, config) as server:
            for _ in range(8):
                server.query(request, timeout=30.0)
            assert server.stats().window <= config.max_window


class TestRequestFuture:
    def test_resolve_unblocks_waiter_and_runs_callbacks(self):
        future = RequestFuture()
        seen: list[QueryResult] = []
        future.add_done_callback(lambda f: seen.append(f.result()))
        result = QueryResult(locations=[1, 2, 3])

        waiter_value = []

        def waiter():
            waiter_value.append(future.result(timeout=5.0))

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.01)
        future._resolve(result, None)
        thread.join(timeout=5.0)
        assert waiter_value == [result]
        assert seen == [result]
        assert future.done()
        assert future.exception() is None

    def test_callback_after_done_runs_immediately(self):
        future = RequestFuture()
        future._resolve(QueryResult(locations=[]), None)
        seen = []
        future.add_done_callback(lambda f: seen.append(True))
        assert seen == [True]

    def test_timeout_raises(self):
        future = RequestFuture()
        with pytest.raises(FutureTimeoutError):
            future.result(timeout=0.01)

    def test_error_resolution(self):
        future = RequestFuture()
        error = ValueError("batch failed")
        future._resolve(None, error)
        assert future.exception() is error
        with pytest.raises(ValueError):
            future.result()


class TestQueryWithDeprecation:
    def test_query_with_warns_and_matches_execute(self):
        database, table = build_database(rows=800)
        predicate = RangePredicate("target", 100.0, 150.0)
        expected = database.execute(QueryRequest.of(table, predicate))
        with pytest.warns(DeprecationWarning, match="query_with"):
            legacy = database.query_with(table, "idx_target", predicate)
        assert legacy.locations == expected.locations
