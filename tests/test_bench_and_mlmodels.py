"""Unit tests for the benchmark harness and the Table 1 regression models."""

import numpy as np
import pytest

from repro.bench.harness import (
    FigureData,
    construction_time,
    insertion_throughput,
    run_point_batch,
    run_query_batch,
)
from repro.bench.report import format_figure, format_memory_report, format_table
from repro.bench.timing import SimulatedClock, ThroughputResult, scaled, stopwatch
from repro.engine.catalog import IndexMethod
from repro.engine.database import Database
from repro.mlmodels.kernel import KernelRegressionModel
from repro.mlmodels.linear import LinearRegressionModel
from repro.storage.disk import DiskManager, IOCostModel
from repro.storage.memory import MemoryReport
from repro.workloads.queries import range_queries
from repro.workloads.synthetic import generate_synthetic, load_synthetic


class TestTiming:
    def test_throughput_result(self):
        result = ThroughputResult(operations=1000, seconds=0.5)
        assert result.ops_per_second == 2000.0
        assert result.kops == 2.0
        assert ThroughputResult(10, 0.0).ops_per_second == 0.0

    def test_stopwatch_measures_elapsed(self):
        with stopwatch() as elapsed:
            sum(range(10_000))
        assert elapsed[0] > 0.0

    def test_scaled_respects_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert scaled(100) == 100
        monkeypatch.setenv("REPRO_SCALE", "2.5")
        assert scaled(100) == 250
        monkeypatch.setenv("REPRO_SCALE", "garbage")
        assert scaled(100) == 100
        monkeypatch.setenv("REPRO_SCALE", "-1")
        assert scaled(100) == 100

    def test_simulated_clock_adds_io_latency(self):
        disk = DiskManager(cost_model=IOCostModel(read_latency_us=1000.0))
        page = disk.allocate_page(capacity=1)
        clock = SimulatedClock(disk)
        clock.start()
        disk.read_page(page.page_id)
        clock.stop()
        assert clock.io_seconds == pytest.approx(1e-3)
        assert clock.total_seconds > clock.cpu_seconds


@pytest.fixture
def hermit_setup():
    dataset = generate_synthetic(2000, "linear", noise_fraction=0.01, seed=8)
    database = Database()
    table_name = load_synthetic(database, dataset)
    entry = database.create_index("idx_c", table_name, "colC",
                                  method=IndexMethod.HERMIT, host_column="colB")
    return database, table_name, entry.mechanism, dataset


class TestHarness:
    def test_run_query_batch_counts_everything(self, hermit_setup):
        _, _, hermit, dataset = hermit_setup
        domain = (float(dataset.columns["colC"].min()),
                  float(dataset.columns["colC"].max()))
        queries = range_queries(domain, selectivity=0.05, count=10, seed=1)
        batch = run_query_batch(hermit, queries)
        assert batch.throughput.operations == 10
        assert batch.throughput.seconds > 0
        assert batch.breakdown.lookups == 10
        assert batch.total_results > 0
        assert 0.0 <= batch.false_positive_ratio <= 1.0

    def test_run_point_batch(self, hermit_setup):
        _, _, hermit, dataset = hermit_setup
        values = [float(v) for v in dataset.columns["colC"][:5]]
        batch = run_point_batch(hermit, values)
        assert batch.throughput.operations == 5
        assert batch.total_results >= 5

    def test_insertion_throughput(self, hermit_setup):
        database, table_name, _, _ = hermit_setup
        rows = [{"colA": 1e7 + i, "colB": 2.0 * i + 10.0, "colC": float(i),
                 "colD": 0.0} for i in range(50)]
        result = insertion_throughput(database, table_name, rows)
        assert result.operations == 50
        assert result.ops_per_second > 0

    def test_construction_time(self):
        assert construction_time(lambda: sum(range(1000)), repetitions=3) >= 0.0

    def test_figure_data_series(self):
        figure = FigureData("Fig X", "selectivity", "kops")
        figure.add_point("HERMIT", 1.0, 10.0)
        figure.add_point("HERMIT", 2.5, 12.0)
        figure.add_point("Baseline", 1.0, 20.0)
        figure.add_point("Baseline", 2.5, 18.0)
        assert figure.series_for("HERMIT").as_rows() == [(1.0, 10.0), (2.5, 12.0)]
        assert figure.ratio("HERMIT", "Baseline") == [0.5, pytest.approx(12 / 18)]


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["a", "bbb"], [[1, 2.5], [10, 0.001]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "bbb" in lines[0]

    def test_format_figure(self):
        figure = FigureData("Figure 4a", "selectivity (%)", "kops")
        figure.add_point("HERMIT", 1.0, 5.0)
        figure.add_point("Baseline", 1.0, 6.0)
        figure.notes.append("shape matches paper")
        text = format_figure(figure)
        assert "Figure 4a" in text
        assert "HERMIT" in text and "Baseline" in text
        assert "note:" in text

    def test_format_empty_figure(self):
        assert "(no data)" in format_figure(FigureData("F", "x", "y"))

    def test_format_memory_report(self):
        report = MemoryReport({"table": 1024 * 1024, "new_indexes": 512 * 1024})
        text = format_memory_report(report, title="Figure 5b")
        assert "Figure 5b" in text
        assert "total" in text


class TestMLModels:
    def test_linear_model_fits_line(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(0, 100, size=1000)
        y = 4.0 * x - 3.0
        model = LinearRegressionModel()
        result = model.timed_fit(x, y)
        assert result.mean_absolute_error < 1e-6
        assert result.num_tuples == 1000
        assert np.allclose(model.predict(np.array([0.0, 1.0])), [-3.0, 1.0])

    def test_linear_model_requires_fit_before_predict(self):
        with pytest.raises(RuntimeError):
            LinearRegressionModel().predict(np.array([1.0]))

    @pytest.mark.parametrize("kernel", ["rbf", "linear", "polynomial"])
    def test_kernel_models_fit_reasonably(self, kernel):
        rng = np.random.default_rng(1)
        x = rng.uniform(-2, 2, size=300)
        y = np.sin(x)
        model = KernelRegressionModel(kernel=kernel, regularization=1e-3)
        result = model.timed_fit(x, y)
        assert result.seconds > 0
        assert result.mean_absolute_error < 0.5

    def test_kernel_training_is_much_slower_than_linear(self):
        """The Table 1 effect: kernel training cost grows superlinearly."""
        rng = np.random.default_rng(2)
        x = rng.uniform(0, 10, size=1200)
        y = 2 * x + rng.normal(0, 0.1, size=1200)
        linear_seconds = LinearRegressionModel().timed_fit(x, y).seconds
        kernel_seconds = KernelRegressionModel("rbf").timed_fit(x, y).seconds
        assert kernel_seconds > 10 * linear_seconds

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError):
            KernelRegressionModel(kernel="laplacian")

    def test_kernel_requires_fit_before_predict(self):
        with pytest.raises(RuntimeError):
            KernelRegressionModel().predict(np.array([1.0]))
