"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "bench_smoke: tiny-scale run of a benchmark hot path, kept in tier-1 "
        "so the vectorized lookup path cannot silently regress to the scalar "
        "fallback (deselect with '-m \"not bench_smoke\"')",
    )
    config.addinivalue_line(
        "markers",
        "fault_injection: crash/torn-write/fsync-failure recovery tests "
        "driven by the durability fault harness; CI runs them as a "
        "dedicated step (select with '-m fault_injection')",
    )
    config.addinivalue_line(
        "markers",
        "sharding: scatter/gather equivalence tests for the sharded "
        "execution tier (ShardedDatabase vs a single Database on identical "
        "DML + query traces); CI runs them as a dedicated step (select "
        "with '-m sharding')",
    )
    config.addinivalue_line(
        "markers",
        "serving: concurrency tests for the coalescing serving front end "
        "(epoch protocol, writer-interleaving stress, server-vs-batch "
        "equivalence); CI runs them as a dedicated step (select with "
        "'-m serving')",
    )
    config.addinivalue_line(
        "markers",
        "epoch_discipline: race-detection tests seeding epoch-protocol "
        "violations (shared-side writes, upgrade attempts, lock-order "
        "inversions) and asserting EpochManager(debug=True) catches each "
        "one; CI runs them in the analysis job (select with "
        "'-m epoch_discipline')",
    )

from repro.engine.catalog import IndexMethod
from repro.engine.database import Database
from repro.storage.identifiers import PointerScheme
from repro.storage.schema import numeric_schema
from repro.storage.table import Table
from repro.workloads.synthetic import generate_synthetic, load_synthetic


@pytest.fixture
def small_table() -> Table:
    """A four-column numeric table with 200 rows of linearly correlated data."""
    schema = numeric_schema("demo", ["pk", "host", "target", "payload"],
                            primary_key="pk")
    table = Table(schema)
    rng = np.random.default_rng(0)
    target = rng.uniform(0.0, 1000.0, size=200)
    table.insert_many({
        "pk": np.arange(200, dtype=np.float64),
        "host": 3.0 * target + 5.0,
        "target": target,
        "payload": rng.uniform(size=200),
    })
    return table


@pytest.fixture
def linear_dataset():
    """A small Synthetic-Linear dataset with 2% noise."""
    return generate_synthetic(3000, "linear", noise_fraction=0.02, seed=1)


@pytest.fixture
def sigmoid_dataset():
    """A small Synthetic-Sigmoid dataset with 2% noise."""
    return generate_synthetic(3000, "sigmoid", noise_fraction=0.02, seed=2)


def build_synthetic_database(dataset, pointer_scheme=PointerScheme.PHYSICAL,
                             index_method=IndexMethod.HERMIT):
    """Create a Database with the Synthetic table and an index on colC."""
    database = Database(pointer_scheme=pointer_scheme)
    table_name = load_synthetic(database, dataset)
    database.create_index("idx_colC", table_name, "colC", method=index_method,
                          host_column="colB" if index_method is IndexMethod.HERMIT
                          else None)
    return database, table_name


@pytest.fixture
def linear_database(linear_dataset):
    """Database with the Synthetic-Linear table and a Hermit index on colC."""
    return build_synthetic_database(linear_dataset)


@pytest.fixture
def sigmoid_database(sigmoid_dataset):
    """Database with the Synthetic-Sigmoid table and a Hermit index on colC."""
    return build_synthetic_database(sigmoid_dataset)
