"""Write-path equivalence tests.

The batched write API is a pure optimisation: for any data, any batch and
either pointer scheme, maintaining the indexes through ``insert_many`` must
leave every structure with exactly the same contents as the per-row scalar
loop — at the index level (same entries in the same key order), at the
mechanism level (same lookup answers for Hermit, the baseline secondary
index and the Correlation Map) and at the engine level (same query results
through ``Database``).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine.catalog import IndexMethod
from repro.engine.database import Database
from repro.engine.query import RangePredicate
from repro.errors import SchemaError, StorageError
from repro.index.base import Index, KeyRange
from repro.index.bptree import BPlusTree
from repro.index.hash_index import HashIndex
from repro.index.paged_bptree import PagedBPlusTree
from repro.index.sorted_column import SortedColumnIndex
from repro.storage.buffer_pool import BufferPool
from repro.storage.disk import DiskManager
from repro.storage.identifiers import PointerScheme
from repro.storage.schema import Column, DataType, TableSchema, numeric_schema
from repro.storage.table import Table

SETTINGS = settings(max_examples=15, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])

INDEX_FACTORIES = {
    "bptree": lambda: BPlusTree(node_capacity=8),
    "sorted": SortedColumnIndex,
    "hash": HashIndex,
    "paged": lambda: PagedBPlusTree(BufferPool(DiskManager(), capacity=64),
                                    node_capacity=8),
}

key_batches = st.lists(
    st.floats(min_value=-100.0, max_value=100.0, allow_nan=False),
    min_size=0, max_size=120,
)


class TestIndexInsertManyEquivalence:
    """``Index.insert_many`` must match a scalar ``insert`` loop exactly."""

    @SETTINGS
    @pytest.mark.parametrize("kind", sorted(INDEX_FACTORIES))
    @given(base=key_batches, batch=key_batches)
    def test_matches_scalar_loop(self, kind, base, batch):
        reference = INDEX_FACTORIES[kind]()
        batched = INDEX_FACTORIES[kind]()
        for position, key in enumerate(base):
            reference.insert(key, position)
            batched.insert(key, position)
        for position, key in enumerate(batch):
            reference.insert(key, 1_000 + position)
        batched.insert_many(np.asarray(batch, dtype=np.float64),
                            np.arange(1_000, 1_000 + len(batch)))

        assert batched.num_entries == reference.num_entries
        assert sorted(batched.items()) == sorted(reference.items())
        if kind != "hash":
            batched_keys = [key for key, _ in batched.items()]
            assert batched_keys == sorted(batched_keys)
        for key_range in (KeyRange(-100.0, 100.0), KeyRange(0.0, 10.0),
                          KeyRange(5.0, 5.0)):
            assert (sorted(batched.range_search(key_range))
                    == sorted(reference.range_search(key_range)))

    def test_batch_into_empty_tree_packs_leaves(self):
        tree = BPlusTree(node_capacity=8)
        keys = np.linspace(0.0, 1.0, 500)
        tree.insert_many(keys, np.arange(500))
        assert tree.num_entries == 500
        assert len(tree.range_search_array(KeyRange(0.0, 1.0))) == 500

    def test_batch_larger_than_tree_splits_correctly(self):
        tree = BPlusTree(node_capacity=8)
        tree.insert(0.5, 0)
        rng = np.random.default_rng(3)
        keys = rng.uniform(0.0, 1.0, 2_000)
        tree.insert_many(keys, np.arange(1, 2_001))
        assert tree.num_entries == 2_001
        found = tree.range_search_array(KeyRange(0.0, 1.0))
        assert len(found) == 2_001
        assert set(found.tolist()) == set(range(2_001))

    def test_length_mismatch_raises(self):
        for kind in sorted(INDEX_FACTORIES):
            index = INDEX_FACTORIES[kind]()
            with pytest.raises(StorageError):
                index.insert_many([1.0, 2.0], [0])

    def test_base_fallback_is_used_by_plain_indexes(self):
        """The Index base class provides a scalar-loop fallback."""

        class MinimalIndex(HashIndex):
            insert_many = Index.insert_many

        index = MinimalIndex()
        index.insert_many([1.0, 1.0, 2.0], np.arange(3))
        assert index.num_entries == 3
        assert sorted(index.search(1.0)) == [0, 1]


correlated_rows = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
        st.floats(min_value=-500.0, max_value=500.0, allow_nan=False),
        st.booleans(),
    ),
    min_size=4,
    max_size=120,
)


def _columns_for(rows, start_pk: int):
    targets = np.asarray([t for t, _, _ in rows], dtype=np.float64)
    hosts = np.asarray(
        [3.0 * t - 7.0 + (noise if noisy else 0.0) for t, noise, noisy in rows],
        dtype=np.float64,
    )
    pks = np.arange(start_pk, start_pk + len(rows), dtype=np.float64)
    return {"pk": pks, "host": hosts, "target": targets}


def _build_database(scheme: PointerScheme, base_columns) -> Database:
    database = Database(pointer_scheme=scheme)
    database.create_table(numeric_schema("t", ["pk", "host", "target"],
                                         primary_key="pk"))
    database.insert_many("t", base_columns)
    database.create_index("idx_host", "t", "host",
                          method=IndexMethod.BTREE, preexisting=True)
    database.create_index("idx_hermit", "t", "target",
                          method=IndexMethod.HERMIT, host_column="host")
    database.create_index("idx_baseline", "t", "target",
                          method=IndexMethod.BTREE)
    database.create_index("idx_cm", "t", "target",
                          method=IndexMethod.CORRELATION_MAP,
                          host_column="host",
                          cm_target_bucket_width=64.0,
                          cm_host_bucket_width=192.0)
    return database


class TestDatabaseWritePathEquivalence:
    """Scalar ``insert`` loop and ``insert_many`` are indistinguishable."""

    @SETTINGS
    @given(base=correlated_rows, batch=correlated_rows,
           scheme=st.sampled_from([PointerScheme.PHYSICAL,
                                   PointerScheme.LOGICAL]))
    def test_identical_indexes_and_lookups(self, base, batch, scheme):
        base_columns = _columns_for(base, 0)
        batch_columns = _columns_for(batch, len(base))
        scalar_db = _build_database(scheme, base_columns)
        batched_db = _build_database(scheme, base_columns)

        names = list(batch_columns)
        for values in zip(*(batch_columns[name] for name in names)):
            scalar_db.insert("t", dict(zip(names, values)))
        batched_db.insert_many("t", batch_columns)

        scalar_entry = scalar_db.catalog.table_entry("t")
        batched_entry = batched_db.catalog.table_entry("t")
        assert (list(scalar_entry.primary_index.items())
                == list(batched_entry.primary_index.items()))
        scalar_secondary = scalar_entry.indexes["idx_baseline"].mechanism.index
        batched_secondary = batched_entry.indexes["idx_baseline"].mechanism.index
        assert (sorted(scalar_secondary.items())
                == sorted(batched_secondary.items()))
        hermit_scalar = scalar_entry.indexes["idx_hermit"].mechanism
        hermit_batched = batched_entry.indexes["idx_hermit"].mechanism
        assert (hermit_scalar.trs_tree.num_outliers
                == hermit_batched.trs_tree.num_outliers)
        assert (batched_entry.indexes["idx_cm"].mechanism.num_bucket_links
                == scalar_entry.indexes["idx_cm"].mechanism.num_bucket_links)

        for index_name in ("idx_hermit", "idx_baseline", "idx_cm"):
            for low, high in ((0.0, 1000.0), (250.0, 500.0), (999.0, 999.0)):
                predicate = RangePredicate("target", low, high)
                scalar_found = scalar_db.query_with("t", index_name, predicate)
                batched_found = batched_db.query_with("t", index_name,
                                                      predicate)
                assert (set(map(int, scalar_found.locations))
                        == set(map(int, batched_found.locations)))

    def test_insert_delegates_to_batch_path(self, linear_database):
        """A single-row insert maintains every index through the batch path."""
        database, table_name = linear_database
        location = database.insert(table_name, {
            "colA": 1e9, "colB": 2.0 * 123_456.0 + 10.0,
            "colC": 123_456.0, "colD": 0.5,
        })
        result = database.query(table_name,
                                RangePredicate("colC", 123_456.0, 123_456.0))
        assert location in set(map(int, result.locations))

    def test_insert_rejects_unknown_and_missing_columns(self, linear_database):
        database, table_name = linear_database
        with pytest.raises(SchemaError):
            database.insert(table_name, {"colA": 1.0, "colB": 1.0,
                                         "colC": 1.0, "colD": 1.0,
                                         "bogus": 1.0})
        with pytest.raises(SchemaError):
            database.insert(table_name, {"colA": 1.0})


class TestBulkLoadBranchConsistency:
    """The empty-primary-index bulk-load branch must notify mechanisms."""

    def test_mechanisms_see_rows_bulk_loaded_into_empty_table(self):
        database = Database()
        database.create_table(numeric_schema("t", ["pk", "host", "target"],
                                             primary_key="pk"))
        database.create_index("idx_host", "t", "host",
                              method=IndexMethod.BTREE, preexisting=True)
        database.create_index("idx_hermit", "t", "target",
                              method=IndexMethod.HERMIT, host_column="host")
        targets = np.linspace(0.0, 100.0, 50)
        database.insert_many("t", {
            "pk": np.arange(50, dtype=np.float64),
            "host": 2.0 * targets + 1.0,
            "target": targets,
        })
        entry = database.catalog.table_entry("t")
        assert entry.primary_index.num_entries == 50
        for index_name in ("idx_host", "idx_hermit"):
            predicate = (RangePredicate("host", 0.0, 300.0)
                         if index_name == "idx_host"
                         else RangePredicate("target", 0.0, 100.0))
            found = database.query_with("t", index_name, predicate)
            assert len(found.locations) == 50

    def test_table_insert_many_rejects_missing_non_nullable_column(self):
        schema = TableSchema("t", [Column("pk"), Column("x"),
                                   Column("y", nullable=True)],
                             primary_key="pk")
        table = Table(schema)
        with pytest.raises(SchemaError):
            table.insert_many({"pk": [1.0]})
        locations = table.insert_many({"pk": [1.0], "x": [2.0]})
        assert len(locations) == 1
        assert np.isnan(table.value(locations[0], "y"))

    def test_mechanisms_index_stored_values_not_supplied_values(self):
        """Batch notifications must carry the dtype-coerced stored values.

        Storing 2.7 into an INT64 column keeps 2; the secondary index must
        key 2 as well (the per-row path notified mechanisms from ``fetch``,
        which returned the stored value).
        """
        schema = TableSchema("t", [Column("pk"),
                                   Column("target", dtype=DataType.INT64)],
                             primary_key="pk")
        database = Database()
        database.create_table(schema)
        database.create_index("idx_target", "t", "target",
                              method=IndexMethod.BTREE)
        database.insert_many("t", {"pk": [1.0, 2.0], "target": [2.7, 5.2]})
        stored = database.query_with(
            "t", "idx_target", RangePredicate("target", 2.0, 2.0)
        )
        assert len(stored.locations) == 1
        supplied = database.query_with(
            "t", "idx_target", RangePredicate("target", 2.7, 2.7)
        )
        assert len(supplied.locations) == 0

    def test_second_batch_merges_instead_of_bulk_loading(self):
        database = Database()
        database.create_table(numeric_schema("t", ["pk", "x"],
                                             primary_key="pk"))
        database.insert_many("t", {"pk": [1.0, 2.0], "x": [10.0, 20.0]})
        database.insert_many("t", {"pk": [3.0], "x": [30.0]})
        entry = database.catalog.table_entry("t")
        assert entry.primary_index.num_entries == 3
        assert [key for key, _ in entry.primary_index.items()] == [1.0, 2.0, 3.0]
