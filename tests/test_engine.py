"""Unit tests for the catalog, query model, executor and database facade."""

import numpy as np
import pytest

from repro.engine.catalog import Catalog, IndexEntry, IndexMethod
from repro.engine.database import Database
from repro.engine.executor import choose_index, full_scan
from repro.engine.query import QueryResult, RangePredicate, point_predicate
from repro.errors import CatalogError, QueryError
from repro.index.bptree import BPlusTree
from repro.storage.identifiers import PointerScheme
from repro.storage.schema import numeric_schema
from repro.storage.table import Table
from repro.workloads.synthetic import generate_synthetic, load_synthetic


class TestQueryModel:
    def test_range_predicate(self):
        predicate = RangePredicate("x", 1.0, 5.0)
        assert predicate.matches(3.0)
        assert not predicate.matches(6.0)
        assert not predicate.is_point
        assert predicate.key_range.low == 1.0

    def test_point_predicate(self):
        predicate = point_predicate("x", 4.0)
        assert predicate.is_point
        assert predicate.matches(4.0)

    def test_invalid_bounds(self):
        with pytest.raises(QueryError):
            RangePredicate("x", 5.0, 1.0)

    def test_query_result_len(self):
        assert len(QueryResult(locations=[1, 2, 3])) == 3


class TestCatalog:
    def make_entry(self, name="idx", column="x", method=IndexMethod.BTREE,
                   preexisting=False):
        return IndexEntry(name=name, table_name="t", column=column, method=method,
                          mechanism=object(), is_preexisting=preexisting)

    def test_add_and_lookup_table(self):
        catalog = Catalog()
        table = Table(numeric_schema("t", ["pk"], primary_key="pk"))
        catalog.add_table("t", table, BPlusTree())
        assert catalog.table_entry("t").table is table
        assert "t" in catalog
        with pytest.raises(CatalogError):
            catalog.add_table("t", table, BPlusTree())

    def test_unknown_table_raises(self):
        with pytest.raises(CatalogError):
            Catalog().table_entry("missing")

    def test_index_registration(self):
        catalog = Catalog()
        table = Table(numeric_schema("t", ["pk", "x"], primary_key="pk"))
        catalog.add_table("t", table, BPlusTree())
        catalog.add_index(self.make_entry())
        with pytest.raises(CatalogError):
            catalog.add_index(self.make_entry())
        assert len(catalog.indexes_on("t")) == 1
        assert catalog.indexes_on_column("t", "x")[0].name == "idx"
        assert catalog.indexed_columns("t") == ["x"]

    def test_drop_index(self):
        catalog = Catalog()
        table = Table(numeric_schema("t", ["pk", "x"], primary_key="pk"))
        catalog.add_table("t", table, BPlusTree())
        catalog.add_index(self.make_entry())
        dropped = catalog.drop_index("t", "idx")
        assert dropped.name == "idx"
        with pytest.raises(CatalogError):
            catalog.drop_index("t", "idx")

    def test_indexed_columns_filters_methods(self):
        catalog = Catalog()
        table = Table(numeric_schema("t", ["pk", "x", "y"], primary_key="pk"))
        catalog.add_table("t", table, BPlusTree())
        catalog.add_index(self.make_entry("i1", "x", IndexMethod.BTREE))
        catalog.add_index(self.make_entry("i2", "y", IndexMethod.HERMIT))
        assert catalog.indexed_columns("t") == ["x"]


class TestExecutorHelpers:
    def test_full_scan(self):
        table = Table(numeric_schema("t", ["pk", "x"], primary_key="pk"))
        table.insert_many({"pk": np.arange(10.0), "x": np.arange(10.0) * 10})
        result = full_scan(table, RangePredicate("x", 20.0, 50.0))
        assert result.locations == [2, 3, 4, 5]
        assert result.used_index is None

    def test_choose_index_prefers_complete_index(self):
        btree = IndexEntry("b", "t", "x", IndexMethod.BTREE, object())
        hermit = IndexEntry("h", "t", "x", IndexMethod.HERMIT, object())
        cm = IndexEntry("c", "t", "x", IndexMethod.CORRELATION_MAP, object())
        assert choose_index([hermit, btree, cm]) is btree
        assert choose_index([cm, hermit]) is hermit
        assert choose_index([]) is None

    def test_choose_index_ranks_sorted_column_and_skips_composite(self):
        sorted_entry = IndexEntry("s", "t", "x", IndexMethod.SORTED_COLUMN,
                                  object())
        btree = IndexEntry("b", "t", "x", IndexMethod.BTREE, object())
        hermit = IndexEntry("h", "t", "x", IndexMethod.HERMIT, object())
        composite = IndexEntry("p", "t", "x", IndexMethod.COMPOSITE, object(),
                               second_column="y")
        assert choose_index([hermit, btree, sorted_entry]) is sorted_entry
        # A composite index cannot serve a single predicate alone.
        assert choose_index([composite]) is None
        assert choose_index([composite, hermit]) is hermit


class TestDatabase:
    @pytest.fixture
    def loaded(self):
        dataset = generate_synthetic(2000, "linear", noise_fraction=0.01, seed=5)
        database = Database()
        table_name = load_synthetic(database, dataset)
        return database, table_name, dataset

    def test_auto_index_selects_hermit_for_correlated_column(self, loaded):
        database, table_name, _ = loaded
        entry = database.create_index("idx_c", table_name, "colC",
                                      method=IndexMethod.AUTO)
        assert entry.method is IndexMethod.HERMIT
        assert entry.host_column == "colB"

    def test_auto_index_falls_back_to_btree(self, loaded):
        database, table_name, _ = loaded
        entry = database.create_index("idx_d", table_name, "colD",
                                      method=IndexMethod.AUTO)
        assert entry.method is IndexMethod.BTREE

    def test_query_uses_index_and_matches_full_scan(self, loaded):
        database, table_name, _ = loaded
        database.create_index("idx_c", table_name, "colC",
                              method=IndexMethod.HERMIT, host_column="colB")
        predicate = RangePredicate("colC", 100_000.0, 200_000.0)
        indexed = database.query(table_name, predicate)
        scanned = full_scan(database.table(table_name), predicate)
        assert indexed.locations == scanned.locations
        assert indexed.used_index == "idx_c"

    def test_query_without_index_falls_back_to_scan(self, loaded):
        database, table_name, _ = loaded
        result = database.query(table_name, RangePredicate("colD", 0.0, 0.5))
        assert result.used_index is None
        assert len(result.locations) > 0

    def test_query_with_named_index(self, loaded):
        database, table_name, _ = loaded
        database.create_index("idx_c", table_name, "colC",
                              method=IndexMethod.HERMIT, host_column="colB")
        predicate = RangePredicate("colC", 0.0, 50_000.0)
        result = database.query_with(table_name, "idx_c", predicate)
        assert result.used_index == "idx_c"
        with pytest.raises(CatalogError):
            database.query_with(table_name, "nope", predicate)
        with pytest.raises(QueryError):
            database.query_with(table_name, "idx_c",
                                RangePredicate("colD", 0.0, 1.0))

    def test_hermit_requires_existing_host_index(self):
        dataset = generate_synthetic(500, "linear", seed=6)
        database = Database()
        schema_name = load_synthetic(database, dataset)
        database.drop_index(schema_name, "idx_colB")
        with pytest.raises(CatalogError):
            database.create_index("idx_c", schema_name, "colC",
                                  method=IndexMethod.HERMIT, host_column="colB")

    def test_correlation_map_index(self, loaded):
        database, table_name, _ = loaded
        entry = database.create_index(
            "idx_cm", table_name, "colC", method=IndexMethod.CORRELATION_MAP,
            host_column="colB", cm_target_bucket_width=4096.0,
            cm_host_bucket_width=8192.0,
        )
        assert entry.method is IndexMethod.CORRELATION_MAP
        predicate = RangePredicate("colC", 0.0, 100_000.0)
        indexed = database.query_with(table_name, "idx_cm", predicate)
        scanned = full_scan(database.table(table_name), predicate)
        assert indexed.locations == scanned.locations

    def test_correlation_map_requires_parameters(self, loaded):
        database, table_name, _ = loaded
        with pytest.raises(QueryError):
            database.create_index("idx_cm", table_name, "colC",
                                  method=IndexMethod.CORRELATION_MAP,
                                  host_column="colB")

    def test_dml_maintains_all_indexes(self, loaded):
        database, table_name, _ = loaded
        database.create_index("idx_c", table_name, "colC",
                              method=IndexMethod.HERMIT, host_column="colB")
        location = database.insert(table_name, {
            "colA": 10_000_000.0, "colB": 555.0, "colC": 123_456.0, "colD": 0.5,
        })
        predicate = RangePredicate("colC", 123_455.0, 123_457.0)
        assert location in database.query(table_name, predicate).locations

        database.update(table_name, location, {"colC": 654_321.0})
        assert location not in database.query(table_name, predicate).locations
        assert location in database.query(
            table_name, RangePredicate("colC", 654_320.0, 654_322.0)).locations

        database.delete(table_name, location)
        assert location not in database.query(
            table_name, RangePredicate("colC", 654_320.0, 654_322.0)).locations

    def test_sorted_column_index_method(self, loaded):
        database, table_name, _ = loaded
        entry = database.create_index("idx_d_sorted", table_name, "colD",
                                      method=IndexMethod.SORTED_COLUMN)
        assert entry.method is IndexMethod.SORTED_COLUMN
        predicate = RangePredicate("colD", 0.2, 0.25)
        indexed = database.query(table_name, predicate)
        scanned = full_scan(database.table(table_name), predicate)
        assert indexed.locations == scanned.locations
        assert indexed.used_index == "idx_d_sorted"
        # Maintenance keeps the sorted arrays consistent.
        location = database.insert(table_name, {
            "colA": 20_000_000.0, "colB": 5.0, "colC": 1.0, "colD": 0.21,
        })
        assert location in database.query(table_name, predicate).locations

    def test_sorted_column_serves_as_hermit_host(self, loaded):
        database, table_name, _ = loaded
        database.drop_index(table_name, "idx_colB")
        database.create_index("idx_colB_sorted", table_name, "colB",
                              method=IndexMethod.SORTED_COLUMN,
                              preexisting=True)
        entry = database.create_index("idx_c", table_name, "colC",
                                      method=IndexMethod.HERMIT,
                                      host_column="colB")
        assert entry.host_column == "colB"
        predicate = RangePredicate("colC", 100_000.0, 150_000.0)
        indexed = database.query_with(table_name, "idx_c", predicate)
        scanned = full_scan(database.table(table_name), predicate)
        assert indexed.locations == scanned.locations

    def test_memory_report_labels(self, loaded):
        database, table_name, _ = loaded
        database.create_index("idx_c", table_name, "colC",
                              method=IndexMethod.HERMIT, host_column="colB")
        report = database.memory_report(table_name)
        assert {"table", "primary_index", "existing_indexes",
                "new_indexes"} <= set(report.components)
        # The Hermit index must be far smaller than the pre-existing B+-tree.
        assert report.components["new_indexes"] < report.components[
            "existing_indexes"] / 2

    def test_update_primary_key_maintains_primary_index(self, loaded):
        """Regression: a PK change must re-key the primary index.

        ``Database.update`` used to leave the primary index keyed on the old
        value, so pointer resolution for the row silently failed afterwards.
        """
        database, table_name, _ = loaded
        location = database.insert(table_name, {
            "colA": 30_000_000.0, "colB": 700.0, "colC": 777_777.0, "colD": 0.9,
        })
        database.update(table_name, location, {"colA": 31_000_000.0})
        entry = database.catalog.table_entry(table_name)
        assert entry.primary_index.search(30_000_000.0) == []
        assert entry.primary_index.search(31_000_000.0) == [location]
        # A delete after the PK change must find (and remove) the new entry.
        database.delete(table_name, location)
        assert entry.primary_index.search(31_000_000.0) == []

    def test_update_primary_key_resolves_through_planner(self):
        """Regression: under logical pointers a PK update must not lose rows.

        Secondary indexes store primary keys as tids; with a stale primary
        index the planner's resolution step dropped the updated row from
        every query result.
        """
        dataset = generate_synthetic(1000, "linear", seed=9)
        database = Database(pointer_scheme=PointerScheme.LOGICAL)
        table_name = load_synthetic(database, dataset)
        database.create_index("idx_c", table_name, "colC",
                              method=IndexMethod.BTREE)
        location = database.insert(table_name, {
            "colA": 40_000_000.0, "colB": 5.0, "colC": 123.0, "colD": 0.1,
        })
        predicate = RangePredicate("colC", 122.0, 124.0)
        result = database.query(table_name, predicate)
        assert location in result.locations
        assert result.used_index == "idx_c"

        database.update(table_name, location, {"colA": 41_000_000.0})
        result = database.query(table_name, predicate)
        assert location in result.locations
        assert result.used_index == "idx_c"

    def test_logical_pointer_database(self):
        dataset = generate_synthetic(1000, "linear", seed=9)
        database = Database(pointer_scheme=PointerScheme.LOGICAL)
        table_name = load_synthetic(database, dataset)
        database.create_index("idx_c", table_name, "colC",
                              method=IndexMethod.HERMIT, host_column="colB")
        # Selective enough that the planner picks the Hermit path over a
        # scan even with the logical scheme's per-candidate resolution cost.
        predicate = RangePredicate("colC", 0.0, 10_000.0)
        indexed = database.query(table_name, predicate)
        scanned = full_scan(database.table(table_name), predicate)
        assert indexed.locations == scanned.locations
        assert indexed.used_index == "idx_c"
        assert indexed.breakdown.primary_index_seconds > 0

    def test_logical_pointer_scan_skips_resolution(self):
        """An unselective predicate scans — and a scan never resolves tids."""
        dataset = generate_synthetic(1000, "linear", seed=9)
        database = Database(pointer_scheme=PointerScheme.LOGICAL)
        table_name = load_synthetic(database, dataset)
        database.create_index("idx_c", table_name, "colC",
                              method=IndexMethod.HERMIT, host_column="colB")
        predicate = RangePredicate("colC", 0.0, 900_000.0)
        result = database.query(table_name, predicate)
        assert result.used_index is None
        assert result.breakdown.primary_index_seconds == 0
        assert result.locations == full_scan(
            database.table(table_name), predicate).locations
