"""Unit tests for the baseline secondary index and Correlation Maps."""

import numpy as np
import pytest

from repro.baselines.correlation_maps import CorrelationMap
from repro.baselines.secondary import BaselineSecondaryIndex
from repro.errors import ConfigurationError, QueryError
from repro.index.bptree import BPlusTree
from repro.storage.identifiers import PointerScheme
from repro.storage.schema import numeric_schema
from repro.storage.table import Table


@pytest.fixture
def table():
    rng = np.random.default_rng(0)
    table = Table(numeric_schema("t", ["pk", "host", "target"], primary_key="pk"))
    target = rng.uniform(0.0, 1000.0, size=1000)
    noise = np.where(rng.random(1000) < 0.05,
                     rng.uniform(300.0, 800.0, size=1000), 0.0)
    table.insert_many({
        "pk": np.arange(1000, dtype=np.float64),
        "host": 2.0 * target + noise,
        "target": target,
    })
    return table


def primary_and_host(table, scheme):
    primary = BPlusTree()
    host = BPlusTree()
    slots, pks, hosts = table.project(["pk", "host"])
    primary.bulk_load((float(pk), int(s)) for pk, s in zip(pks, slots))
    tids = slots if scheme is PointerScheme.PHYSICAL else pks
    host.bulk_load((float(h), t.item()) for h, t in zip(hosts, tids))
    return primary, host


def brute_force(table, low, high):
    slots, targets = table.project(["target"])
    return {int(s) for s in slots[(targets >= low) & (targets <= high)]}


class TestBaselineSecondaryIndex:
    @pytest.mark.parametrize("scheme", [PointerScheme.PHYSICAL,
                                        PointerScheme.LOGICAL])
    def test_lookup_exact(self, table, scheme):
        primary, _ = primary_and_host(table, scheme)
        baseline = BaselineSecondaryIndex(table, "target", primary_index=primary,
                                          pointer_scheme=scheme)
        baseline.build()
        assert set(baseline.lookup_range(100.0, 200.0).locations) == \
            brute_force(table, 100.0, 200.0)

    def test_baseline_has_no_false_positives(self, table):
        primary, _ = primary_and_host(table, PointerScheme.PHYSICAL)
        baseline = BaselineSecondaryIndex(table, "target", primary_index=primary)
        baseline.build()
        result = baseline.lookup_range(0.0, 500.0)
        assert result.breakdown.false_positive_ratio == 0.0

    def test_maintenance(self, table):
        primary, _ = primary_and_host(table, PointerScheme.PHYSICAL)
        baseline = BaselineSecondaryIndex(table, "target", primary_index=primary)
        baseline.build()
        row = {"pk": 5000.0, "host": 1.0, "target": 555.25}
        location = int(table.insert(row))
        baseline.insert(row, location)
        assert location in baseline.lookup_point(555.25).locations
        new_row = dict(row, target=111.0)
        table.update(location, {"target": 111.0})
        baseline.update(row, new_row, location)
        assert location in baseline.lookup_point(111.0).locations
        baseline.delete(new_row, location)
        table.delete(location)
        assert location not in baseline.lookup_point(111.0).locations

    def test_memory_tracks_complete_index(self, table):
        primary, _ = primary_and_host(table, PointerScheme.PHYSICAL)
        baseline = BaselineSecondaryIndex(table, "target", primary_index=primary)
        baseline.build()
        assert baseline.memory_bytes() == baseline.index.memory_bytes()
        assert baseline.index.num_entries == table.num_rows

    def test_logical_scheme_requires_primary(self, table):
        with pytest.raises(QueryError):
            BaselineSecondaryIndex(table, "target",
                                   pointer_scheme=PointerScheme.LOGICAL)

    def test_point_lookup(self, table):
        primary, _ = primary_and_host(table, PointerScheme.PHYSICAL)
        baseline = BaselineSecondaryIndex(table, "target", primary_index=primary)
        baseline.build()
        value = float(table.value(3, "target"))
        assert 3 in baseline.lookup_point(value).locations


class TestCorrelationMap:
    @pytest.mark.parametrize("scheme", [PointerScheme.PHYSICAL,
                                        PointerScheme.LOGICAL])
    def test_lookup_exact(self, table, scheme):
        primary, host = primary_and_host(table, scheme)
        cm = CorrelationMap(table, "target", "host", host,
                            target_bucket_width=64.0, host_bucket_width=128.0,
                            primary_index=primary, pointer_scheme=scheme)
        cm.build()
        assert set(cm.lookup_range(100.0, 300.0).locations) == \
            brute_force(table, 100.0, 300.0)

    def test_smaller_buckets_use_more_memory(self, table):
        _, host = primary_and_host(table, PointerScheme.PHYSICAL)
        fine = CorrelationMap(table, "target", "host", host,
                              target_bucket_width=8.0, host_bucket_width=16.0)
        fine.build()
        coarse = CorrelationMap(table, "target", "host", host,
                                target_bucket_width=256.0,
                                host_bucket_width=512.0)
        coarse.build()
        assert fine.num_bucket_links > coarse.num_bucket_links
        assert fine.memory_bytes() > coarse.memory_bytes()

    def test_noise_inflates_cm_but_not_correctness(self, table):
        _, host = primary_and_host(table, PointerScheme.PHYSICAL)
        cm = CorrelationMap(table, "target", "host", host,
                            target_bucket_width=32.0, host_bucket_width=64.0)
        cm.build()
        result = cm.lookup_range(400.0, 420.0)
        assert set(result.locations) == brute_force(table, 400.0, 420.0)
        # Noisy tuples drag extra host buckets in, so some false positives
        # are expected — but never false negatives (checked above).
        assert result.breakdown.candidates >= result.breakdown.results

    def test_insert_extends_mapping(self, table):
        _, host_index = primary_and_host(table, PointerScheme.PHYSICAL)
        cm = CorrelationMap(table, "target", "host", host_index,
                            target_bucket_width=64.0, host_bucket_width=128.0)
        cm.build()
        row = {"pk": 5001.0, "host": 123456.0, "target": 999.5}
        location = int(table.insert(row))
        host_index.insert(row["host"], location)
        cm.insert(row, location)
        assert location in cm.lookup_range(999.0, 1000.0).locations

    def test_delete_keeps_results_correct(self, table):
        _, host_index = primary_and_host(table, PointerScheme.PHYSICAL)
        cm = CorrelationMap(table, "target", "host", host_index,
                            target_bucket_width=64.0, host_bucket_width=128.0)
        cm.build()
        victim = 11
        row = table.fetch(victim)
        cm.delete(row, victim)
        host_index.delete(row["host"], victim)
        table.delete(victim)
        assert victim not in cm.lookup_range(
            row["target"] - 1, row["target"] + 1).locations

    def test_invalid_bucket_widths(self, table):
        _, host_index = primary_and_host(table, PointerScheme.PHYSICAL)
        with pytest.raises(ConfigurationError):
            CorrelationMap(table, "target", "host", host_index,
                           target_bucket_width=0.0, host_bucket_width=1.0)

    def test_logical_scheme_requires_primary(self, table):
        _, host_index = primary_and_host(table, PointerScheme.PHYSICAL)
        with pytest.raises(QueryError):
            CorrelationMap(table, "target", "host", host_index,
                           target_bucket_width=1.0, host_bucket_width=1.0,
                           pointer_scheme=PointerScheme.LOGICAL)
