"""Unit tests for the in-memory columnar table."""

import numpy as np
import pytest

from repro.errors import StorageError, TupleNotFoundError
from repro.storage.schema import numeric_schema
from repro.storage.table import Table


@pytest.fixture
def table() -> Table:
    return Table(numeric_schema("t", ["pk", "x", "y"], primary_key="pk"))


class TestInsertFetch:
    def test_insert_and_fetch_roundtrip(self, table):
        location = table.insert({"pk": 1.0, "x": 2.0, "y": 3.0})
        assert table.fetch(location) == {"pk": 1.0, "x": 2.0, "y": 3.0}
        assert table.num_rows == 1

    def test_insert_many_roundtrip(self, table):
        locations = table.insert_many({
            "pk": np.arange(10.0), "x": np.arange(10.0) * 2, "y": np.zeros(10),
        })
        assert len(locations) == 10
        assert table.num_rows == 10
        assert table.value(locations[3], "x") == 6.0

    def test_insert_many_rejects_unequal_lengths(self, table):
        with pytest.raises(StorageError):
            table.insert_many({"pk": [1.0], "x": [1.0, 2.0], "y": [0.0]})

    def test_insert_many_rejects_unknown_column(self, table):
        with pytest.raises(StorageError):
            table.insert_many({"pk": [1.0], "x": [1.0], "y": [1.0], "z": [1.0]})

    def test_insert_many_empty_is_noop(self, table):
        assert table.insert_many({}) == []
        assert table.insert_many({"pk": [], "x": [], "y": []}) == []

    def test_capacity_growth_preserves_data(self, table):
        locations = [table.insert({"pk": float(i), "x": float(i), "y": 0.0})
                     for i in range(500)]
        assert table.num_rows == 500
        assert table.value(locations[499], "pk") == 499.0
        assert table.value(locations[0], "pk") == 0.0


class TestDeleteUpdate:
    def test_delete_marks_slot_dead(self, table):
        location = table.insert({"pk": 1.0, "x": 2.0, "y": 3.0})
        table.delete(location)
        assert table.num_rows == 0
        assert not table.is_live(location)
        with pytest.raises(TupleNotFoundError):
            table.fetch(location)

    def test_double_delete_raises(self, table):
        location = table.insert({"pk": 1.0, "x": 2.0, "y": 3.0})
        table.delete(location)
        with pytest.raises(TupleNotFoundError):
            table.delete(location)

    def test_update_changes_values(self, table):
        location = table.insert({"pk": 1.0, "x": 2.0, "y": 3.0})
        table.update(location, {"x": 20.0})
        assert table.fetch(location)["x"] == 20.0

    def test_update_unknown_column_raises(self, table):
        location = table.insert({"pk": 1.0, "x": 2.0, "y": 3.0})
        with pytest.raises(StorageError):
            table.update(location, {"zzz": 1.0})

    def test_is_live_out_of_range(self, table):
        assert not table.is_live(99)


class TestScans:
    def test_live_slots_skip_deleted(self, table):
        locations = table.insert_many({
            "pk": np.arange(5.0), "x": np.arange(5.0), "y": np.arange(5.0),
        })
        table.delete(locations[2])
        assert list(table.live_slots()) == [0, 1, 3, 4]

    def test_column_array_restricted_to_live(self, table):
        locations = table.insert_many({
            "pk": np.arange(4.0), "x": np.array([10.0, 11.0, 12.0, 13.0]),
            "y": np.zeros(4),
        })
        table.delete(locations[1])
        assert list(table.column_array("x")) == [10.0, 12.0, 13.0]

    def test_project_returns_aligned_arrays(self, table):
        table.insert_many({"pk": np.arange(3.0), "x": np.arange(3.0) * 2,
                           "y": np.arange(3.0) * 3})
        slots, xs, ys = table.project(["x", "y"])
        assert list(slots) == [0, 1, 2]
        assert list(xs) == [0.0, 2.0, 4.0]
        assert list(ys) == [0.0, 3.0, 6.0]

    def test_scan_projects_requested_columns(self, table):
        table.insert({"pk": 1.0, "x": 2.0, "y": 3.0})
        rows = list(table.scan(["x"]))
        assert rows == [(0, {"x": 2.0})]

    def test_values_vectorised_fetch(self, table):
        table.insert_many({"pk": np.arange(5.0), "x": np.arange(5.0) + 100,
                           "y": np.zeros(5)})
        values = table.values([1, 3], "x")
        assert list(values) == [101.0, 103.0]


class TestVectorizedValidation:
    def test_liveness_mask(self, table):
        locations = table.insert_many({
            "pk": np.arange(5.0), "x": np.arange(5.0), "y": np.zeros(5),
        })
        table.delete(locations[2])
        mask = table.liveness(np.array([0, 1, 2, 3, 4]))
        assert mask.tolist() == [True, True, False, True, True]

    def test_liveness_out_of_range_is_dead(self, table):
        table.insert({"pk": 1.0, "x": 2.0, "y": 3.0})
        mask = table.liveness(np.array([-1, 0, 7]))
        assert mask.tolist() == [False, True, False]

    def test_liveness_empty_input(self, table):
        assert table.liveness(np.array([], dtype=np.int64)).tolist() == []

    def test_filter_in_range_matches_scalar_validation(self, table):
        table.insert_many({
            "pk": np.arange(20.0), "x": np.arange(20.0) * 10, "y": np.zeros(20),
        })
        table.delete(5)
        slots = np.array([0, 3, 5, 7, 12, 19, 99])
        result = table.filter_in_range(slots, "x", 30.0, 130.0)
        expected = [
            int(slot) for slot in slots
            if table.is_live(slot) and 30.0 <= table.value(int(slot), "x") <= 130.0
        ]
        assert result.tolist() == expected  # [3, 7, 12]; order preserved

    def test_filter_in_range_empty_input(self, table):
        table.insert({"pk": 1.0, "x": 2.0, "y": 3.0})
        result = table.filter_in_range(np.array([], dtype=np.int64), "x", 0, 10)
        assert result.size == 0

    def test_filter_in_range_unknown_column_raises(self, table):
        from repro.errors import SchemaError
        table.insert({"pk": 1.0, "x": 2.0, "y": 3.0})
        with pytest.raises(SchemaError):
            table.filter_in_range(np.array([0]), "nope", 0.0, 1.0)


class TestStatisticsAndMemory:
    def test_value_range_tracks_min_max(self, table):
        table.insert_many({"pk": np.arange(3.0), "x": np.array([5.0, -1.0, 7.0]),
                           "y": np.zeros(3)})
        assert table.value_range("x") == (-1.0, 7.0)

    def test_memory_grows_with_rows(self, table):
        before = table.memory_bytes()
        table.insert_many({"pk": np.arange(100.0), "x": np.zeros(100),
                           "y": np.zeros(100)})
        assert table.memory_bytes() > before

    def test_memory_report_has_table_component(self, table):
        report = table.memory_report()
        assert "table" in report.components
        assert report.total_bytes == table.memory_bytes()
