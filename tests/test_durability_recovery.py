"""Crash-recovery property tests driven by the fault-injection harness.

The protocol invariant under test: kill the engine at *any* cumulative WAL
byte offset (optionally garbling the torn tail, or silently dropping a write
tail, or failing an fsync), recover the directory, and the recovered
database must be exactly the shadow in-memory replay of the operation prefix
that survived — across every index mechanism (HERMIT, B+-tree baseline,
sorted column, correlation map), both pointer schemes, and the whole read
API (``query`` / ``query_conjunctive`` / ``query_many`` / ``query_with``).

Because every logged operation appends exactly one record, LSN ``k``
corresponds to operation ``k`` of the scripted workload: the recovered
prefix length is simply ``durability_stats().last_lsn``.
"""

from __future__ import annotations

import os
import shutil
import tempfile

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import TRSTreeConfig
from repro.durability import (
    DurabilityConfig,
    FaultInjector,
    FaultPoint,
    FsyncFailure,
    FsyncPolicy,
    SimulatedCrash,
)
from repro.durability.checkpoint import write_checkpoint
from repro.durability.recovery import recover
from repro.engine.catalog import IndexMethod
from repro.engine.database import Database
from repro.engine.query import RangePredicate
from repro.errors import DurabilityError
from repro.storage.identifiers import PointerScheme
from repro.storage.schema import Column, DataType, TableSchema

pytestmark = pytest.mark.fault_injection

SETTINGS = settings(max_examples=15, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])

TRS = TRSTreeConfig(min_split_size=8)


# ----------------------------------------------------------------- workload

def _schema() -> TableSchema:
    return TableSchema("t", [
        Column("pk", DataType.INT64),
        Column("a", DataType.FLOAT64),
        Column("b", DataType.FLOAT64),
        Column("c", DataType.FLOAT64),
        Column("s", DataType.STRING, nullable=True),
    ], primary_key="pk")


def _batch(rng: np.random.Generator, start: int, count: int) -> dict:
    a = np.sort(rng.uniform(0.0, 1000.0, count))
    return {
        "pk": np.arange(start, start + count, dtype=np.int64),
        "a": a,
        "b": 2.0 * a + rng.normal(0.0, 4.0, count),
        "c": rng.uniform(0.0, 100.0, count),
        "s": [f"row-{start + i}-ü" if i % 7 else None for i in range(count)],
    }


def build_ops() -> list[tuple]:
    """The scripted workload: each entry logs exactly one WAL record."""
    rng = np.random.default_rng(7)
    ops: list[tuple] = [
        ("create_table",),
        ("insert_many", _batch(rng, 0, 120)),
        ("create_index", "ix_a", "a", IndexMethod.BTREE, {}),
        ("create_index", "ix_b_hermit", "b", IndexMethod.HERMIT,
         {"host_column": "a", "trs_config": TRS}),
        ("create_index", "ix_c", "c", IndexMethod.SORTED_COLUMN, {}),
        ("create_index", "ix_b_cm", "b", IndexMethod.CORRELATION_MAP,
         {"host_column": "a", "cm_target_bucket_width": 50.0,
          "cm_host_bucket_width": 25.0}),
        ("insert_many", _batch(rng, 120, 90)),
        ("update", 5, {"b": 123.5, "s": "updated"}),
        ("update", 17, {"a": 404.25}),
        ("delete", 30),
        ("delete", 31),
        ("insert_many", _batch(rng, 210, 60)),
        ("update", 150, {"c": 55.5, "s": None}),
        ("delete", 200),
        ("insert_many", _batch(rng, 270, 40)),
    ]
    return ops


def apply_op(database: Database, op: tuple) -> None:
    kind = op[0]
    if kind == "create_table":
        database.create_table(_schema())
    elif kind == "insert_many":
        database.insert_many("t", op[1])
    elif kind == "create_index":
        _, name, column, method, extra = op
        database.create_index(name, "t", column, method=method, **extra)
    elif kind == "update":
        database.update("t", op[1], op[2])
    elif kind == "delete":
        database.delete("t", op[1])
    else:
        raise AssertionError(f"unknown op {kind}")


def shadow_replay(ops: list[tuple], count: int,
                  pointer_scheme: PointerScheme) -> Database:
    """Plain in-memory database after the first ``count`` operations."""
    database = Database(pointer_scheme=pointer_scheme)
    for op in ops[:count]:
        apply_op(database, op)
    return database


PREDICATES = [
    RangePredicate("a", 100.0, 400.0),
    RangePredicate("b", 300.0, 900.0),
    RangePredicate("c", 10.0, 35.0),
    RangePredicate("b", -50.0, 50.0),
]


def assert_equivalent(recovered: Database, shadow: Database) -> None:
    """Physical state + every read path must match between the two."""
    assert ("t" in recovered.catalog) == ("t" in shadow.catalog)
    if "t" not in shadow.catalog:
        return
    t_r, t_s = recovered.table("t"), shadow.table("t")
    assert t_r.num_rows == t_s.num_rows
    assert t_r.num_slots == t_s.num_slots
    np.testing.assert_array_equal(t_r.live_slots(), t_s.live_slots())
    for column in ("pk", "a", "b", "c"):
        np.testing.assert_array_equal(t_r.column_array(column),
                                      t_s.column_array(column))
        stats_r = t_r.statistics[column]
        stats_s = t_s.statistics[column]
        assert (stats_r.count, stats_r.minimum, stats_r.maximum) == \
            (stats_s.count, stats_s.minimum, stats_s.maximum)
    for slot in t_s.live_slots()[:25]:
        assert t_r.fetch(int(slot)) == t_s.fetch(int(slot))

    entry_r = recovered.catalog.table_entry("t")
    entry_s = shadow.catalog.table_entry("t")
    assert set(entry_r.indexes) == set(entry_s.indexes)
    for name, index_entry in entry_s.indexes.items():
        assert entry_r.indexes[name].method is index_entry.method
        predicate = RangePredicate(index_entry.column, 200.0, 700.0)
        got = recovered.query_with("t", name, predicate)
        want = shadow.query_with("t", name, predicate)
        assert got.locations == want.locations, name

    for predicate in PREDICATES:
        assert recovered.query("t", predicate).locations == \
            shadow.query("t", predicate).locations
    got_many = recovered.query_many("t", PREDICATES)
    want_many = shadow.query_many("t", PREDICATES)
    for got, want in zip(got_many, want_many):
        assert got.locations == want.locations
    conj = [RangePredicate("a", 100.0, 600.0),
            RangePredicate("b", 250.0, 1100.0)]
    np.testing.assert_array_equal(
        recovered.query_conjunctive("t", conj).locations,
        shadow.query_conjunctive("t", conj).locations,
    )


def run_workload(directory: str, injector: FaultInjector | None,
                 pointer_scheme: PointerScheme,
                 fsync: FsyncPolicy = FsyncPolicy.BATCH,
                 checkpoint_interval: int | None = 7) -> int:
    """Apply the scripted ops until completion or injected death.

    Returns the number of operations fully acknowledged before the fault.
    """
    config = DurabilityConfig(
        directory=directory, fsync=fsync, fsync_interval=3,
        checkpoint_interval_records=checkpoint_interval,
        opener=injector.opener if injector is not None else None,
    )
    database = Database(pointer_scheme=pointer_scheme, durability=config)
    acked = 0
    try:
        for op in build_ops():
            apply_op(database, op)
            acked += 1
        database.close()
    except SimulatedCrash:
        pass
    return acked


def total_wal_bytes(pointer_scheme: PointerScheme) -> int:
    """Cumulative WAL bytes of a fault-free run (deterministic workload)."""
    injector = FaultInjector()
    tmp = tempfile.mkdtemp()
    try:
        run_workload(tmp, injector, pointer_scheme)
    finally:
        shutil.rmtree(tmp)
    return injector.bytes_written


_TOTALS: dict[PointerScheme, int] = {}


def wal_budget(pointer_scheme: PointerScheme) -> int:
    if pointer_scheme not in _TOTALS:
        _TOTALS[pointer_scheme] = total_wal_bytes(pointer_scheme)
    return _TOTALS[pointer_scheme]


# ------------------------------------------------------------ property tests

@pytest.mark.parametrize("pointer_scheme",
                         [PointerScheme.PHYSICAL, PointerScheme.LOGICAL])
@SETTINGS
@given(fraction=st.floats(min_value=0.0, max_value=1.0),
       garble=st.integers(min_value=0, max_value=24),
       torn=st.booleans())
def test_crash_anywhere_recovers_surviving_prefix(pointer_scheme, fraction,
                                                  garble, torn):
    """Crash at any WAL byte → recovery equals the shadow replay."""
    budget = wal_budget(pointer_scheme)
    offset = int(fraction * budget)
    fault = (FaultPoint(torn_write_at_byte=offset) if torn
             else FaultPoint(crash_at_byte=offset, garble_tail=garble))
    tmp = tempfile.mkdtemp()
    try:
        acked = run_workload(tmp, FaultInjector(fault=fault), pointer_scheme)
        recovered = recover(DurabilityConfig(directory=tmp),
                            pointer_scheme=pointer_scheme)
        survived = recovered.durability_stats().last_lsn
        assert survived <= len(build_ops())
        if not torn:
            assert acked <= survived + 1  # only the in-flight op may be lost
        shadow = shadow_replay(build_ops(), survived, pointer_scheme)
        assert_equivalent(recovered, shadow)
        recovered.close()
    finally:
        shutil.rmtree(tmp)


@SETTINGS
@given(fraction=st.floats(min_value=0.0, max_value=1.0))
def test_fsync_always_loses_no_acknowledged_op(fraction):
    """Under ``FsyncPolicy.ALWAYS`` every acknowledged op must survive."""
    tmp_budget = tempfile.mkdtemp()
    injector = FaultInjector()
    try:
        run_workload(tmp_budget, injector, PointerScheme.PHYSICAL,
                     fsync=FsyncPolicy.ALWAYS)
    finally:
        shutil.rmtree(tmp_budget)
    offset = int(fraction * injector.bytes_written)

    tmp = tempfile.mkdtemp()
    try:
        acked = run_workload(
            tmp, FaultInjector(fault=FaultPoint(crash_at_byte=offset)),
            PointerScheme.PHYSICAL, fsync=FsyncPolicy.ALWAYS,
        )
        recovered = recover(DurabilityConfig(directory=tmp))
        survived = recovered.durability_stats().last_lsn
        assert survived >= acked
        assert_equivalent(
            recovered,
            shadow_replay(build_ops(), survived, PointerScheme.PHYSICAL),
        )
        recovered.close()
    finally:
        shutil.rmtree(tmp)


# --------------------------------------------------------- targeted faults

def test_crash_between_checkpoint_and_wal_reset(tmp_path):
    """A checkpoint whose WAL reset never happened recovers exactly once."""
    directory = str(tmp_path)
    config = DurabilityConfig(directory=directory,
                              checkpoint_interval_records=None)
    database = Database(durability=config)
    ops = build_ops()
    for op in ops:
        apply_op(database, op)
    # crash window: manifest committed, WAL still holds every record
    write_checkpoint(database, directory, database.durability.wal.last_lsn)
    database.close()

    recovered = recover(DurabilityConfig(directory=directory))
    assert recovered.durability_stats().recovery.records_replayed == 0
    assert_equivalent(recovered,
                      shadow_replay(ops, len(ops), PointerScheme.PHYSICAL))
    recovered.close()


def test_corrupt_checkpoint_falls_back_to_older_one(tmp_path):
    """A bit-flipped npz fails its CRC and the previous checkpoint is used."""
    directory = str(tmp_path)
    config = DurabilityConfig(directory=directory, keep_checkpoints=2)
    database = Database(durability=config)
    ops = build_ops()
    for op in ops[:7]:
        apply_op(database, op)
    database.checkpoint()
    rows_at_first = database.table("t").num_rows
    for op in ops[7:]:
        apply_op(database, op)
    database.checkpoint()
    database.close()

    newest = sorted(name for name in os.listdir(directory)
                    if name.endswith(".npz"))[-1]
    path = os.path.join(directory, newest)
    blob = bytearray(open(path, "rb").read())
    blob[len(blob) // 2] ^= 0xFF
    with open(path, "wb") as handle:
        handle.write(blob)

    recovered = recover(DurabilityConfig(directory=directory))
    # the newest checkpoint is unusable and the WAL was reset after it, so
    # the recoverable state is the older checkpoint
    assert recovered.table("t").num_rows == rows_at_first
    assert_equivalent(recovered,
                      shadow_replay(ops, 7, PointerScheme.PHYSICAL))
    recovered.close()


def test_torn_checkpoint_manifest_is_invisible(tmp_path):
    """A truncated manifest (crash mid-rename-window) is skipped entirely."""
    directory = str(tmp_path)
    database = Database(
        durability=DurabilityConfig(directory=directory)
    )
    ops = build_ops()
    for op in ops:
        apply_op(database, op)
    write_checkpoint(database, directory, 999_999)
    database.close()
    manifest = [name for name in os.listdir(directory)
                if name.endswith(".json")][0]
    path = os.path.join(directory, manifest)
    blob = open(path, "rb").read()
    with open(path, "wb") as handle:
        handle.write(blob[:len(blob) // 2])

    recovered = recover(DurabilityConfig(directory=directory))
    assert_equivalent(recovered,
                      shadow_replay(ops, len(ops), PointerScheme.PHYSICAL))
    recovered.close()


def test_fsync_failure_surfaces_and_engine_stays_consistent(tmp_path):
    """An injected fsync error aborts the op before any state mutates."""
    directory = str(tmp_path)
    injector = FaultInjector()
    database = Database(durability=DurabilityConfig(
        directory=directory, fsync=FsyncPolicy.ALWAYS,
        opener=injector.opener,
    ))
    database.create_table(_schema())
    # arm the fault now, so the *next* sync (the insert's) is the one to die
    injector.fault.fail_fsync_after = injector.bytes_written
    with pytest.raises(FsyncFailure):
        apply_op(database, ("insert_many", _batch(np.random.default_rng(1),
                                                  0, 10)))
    # write-ahead ordering: the failed op never reached the engine
    assert database.table("t").num_rows == 0
    # the injector fails only once; the engine keeps working afterwards
    apply_op(database, ("insert_many", _batch(np.random.default_rng(2),
                                              0, 10)))
    assert database.table("t").num_rows == 10
    database.close()
    recovered = recover(DurabilityConfig(directory=directory))
    assert recovered.table("t").num_rows in (10, 20)
    recovered.close()


def test_fresh_database_refuses_used_directory(tmp_path):
    directory = str(tmp_path)
    database = Database(durability=DurabilityConfig(directory=directory))
    database.create_table(_schema())
    database.close()
    with pytest.raises(DurabilityError):
        Database(durability=DurabilityConfig(directory=directory))


def test_recovered_database_keeps_logging(tmp_path):
    """Post-recovery writes land in the same WAL and survive a second crash."""
    directory = str(tmp_path)
    database = Database(durability=DurabilityConfig(directory=directory))
    ops = build_ops()
    for op in ops[:7]:
        apply_op(database, op)
    database.close()

    recovered = recover(DurabilityConfig(directory=directory))
    for op in ops[7:]:
        apply_op(recovered, op)
    recovered.close()

    again = recover(DurabilityConfig(directory=directory))
    assert_equivalent(again,
                      shadow_replay(ops, len(ops), PointerScheme.PHYSICAL))
    again.close()
