"""Unit tests for the Hermit index mechanism (4-step lookup + maintenance)."""

import numpy as np
import pytest

from repro.core.config import TRSTreeConfig
from repro.core.hermit import HermitIndex, LookupBreakdown
from repro.errors import QueryError
from repro.index.bptree import BPlusTree
from repro.storage.identifiers import PointerScheme
from repro.storage.schema import numeric_schema
from repro.storage.table import Table


def make_table(count=2000, seed=0, noise_fraction=0.02):
    """Table with pk / host / target / payload where host ~ 2*target + 5."""
    rng = np.random.default_rng(seed)
    schema = numeric_schema("t", ["pk", "host", "target", "payload"],
                            primary_key="pk")
    table = Table(schema)
    target = rng.uniform(0.0, 1000.0, size=count)
    host = 2.0 * target + 5.0
    noisy = rng.random(count) < noise_fraction
    host = np.where(noisy, host + rng.uniform(500.0, 1500.0, size=count), host)
    table.insert_many({
        "pk": np.arange(count, dtype=np.float64),
        "host": host,
        "target": target,
        "payload": rng.uniform(size=count),
    })
    return table


def build_hermit(table, pointer_scheme=PointerScheme.PHYSICAL, config=None):
    """Construct host and primary indexes plus a Hermit index on ``target``."""
    config = config if config is not None else TRSTreeConfig()
    primary = BPlusTree()
    host_index = BPlusTree()
    slots, pks, hosts = table.project(["pk", "host"])
    primary.bulk_load((float(pk), int(slot)) for pk, slot in zip(pks, slots))
    if pointer_scheme is PointerScheme.PHYSICAL:
        host_index.bulk_load((float(h), int(s)) for h, s in zip(hosts, slots))
    else:
        host_index.bulk_load((float(h), float(pk)) for h, pk in zip(hosts, pks))
    hermit = HermitIndex(table, "target", "host", host_index,
                         primary_index=primary, pointer_scheme=pointer_scheme,
                         config=config)
    hermit.build()
    return hermit


def brute_force(table, low, high):
    slots, targets = table.project(["target"])
    mask = (targets >= low) & (targets <= high)
    return {int(s) for s in slots[mask]}


class TestLookup:
    @pytest.mark.parametrize("scheme", [PointerScheme.PHYSICAL,
                                        PointerScheme.LOGICAL])
    def test_range_lookup_is_exact(self, scheme):
        table = make_table()
        hermit = build_hermit(table, pointer_scheme=scheme)
        result = hermit.lookup_range(200.0, 400.0)
        assert set(result.locations) == brute_force(table, 200.0, 400.0)

    def test_point_lookup_is_exact(self):
        table = make_table()
        hermit = build_hermit(table)
        value = float(table.value(5, "target"))
        result = hermit.lookup_point(value)
        assert 5 in result.locations
        assert set(result.locations) == brute_force(table, value, value)

    def test_breakdown_phases_populated(self):
        table = make_table()
        hermit = build_hermit(table, pointer_scheme=PointerScheme.LOGICAL)
        result = hermit.lookup_range(100.0, 300.0)
        breakdown = result.breakdown
        assert breakdown.lookups == 1
        assert breakdown.trs_seconds >= 0
        assert breakdown.host_index_seconds > 0
        assert breakdown.primary_index_seconds > 0
        assert breakdown.base_table_seconds > 0
        assert breakdown.candidates >= breakdown.results
        fractions = breakdown.fractions()
        assert pytest.approx(sum(fractions.values()), abs=1e-9) == 1.0

    def test_physical_scheme_skips_primary_index(self):
        table = make_table()
        hermit = build_hermit(table, pointer_scheme=PointerScheme.PHYSICAL)
        result = hermit.lookup_range(100.0, 300.0)
        assert result.breakdown.primary_index_seconds == 0.0

    def test_cumulative_breakdown_accumulates(self):
        table = make_table()
        hermit = build_hermit(table)
        hermit.lookup_range(0.0, 100.0)
        hermit.lookup_range(100.0, 200.0)
        assert hermit.cumulative.lookups == 2
        hermit.reset_breakdown()
        assert hermit.cumulative.lookups == 0

    def test_false_positive_ratio_bounded(self):
        table = make_table()
        hermit = build_hermit(table)
        result = hermit.lookup_range(0.0, 1000.0)
        # A full-domain range query has almost no false positives.
        assert result.breakdown.false_positive_ratio < 0.2

    def test_empty_range(self):
        table = make_table()
        hermit = build_hermit(table)
        result = hermit.lookup_range(5000.0, 6000.0)
        assert len(result.locations) == 0

    def test_logical_scheme_requires_primary_index(self):
        table = make_table(count=50)
        with pytest.raises(QueryError):
            HermitIndex(table, "target", "host", BPlusTree(),
                        pointer_scheme=PointerScheme.LOGICAL)


class TestMaintenance:
    def test_insert_then_lookup_finds_new_row(self):
        table = make_table()
        hermit = build_hermit(table)
        host_index = hermit.host_index
        row = {"pk": 99999.0, "host": 2.0 * 555.5 + 5.0, "target": 555.5,
               "payload": 0.0}
        location = int(table.insert(row))
        host_index.insert(row["host"], location)
        hermit.insert(row, location)
        result = hermit.lookup_range(555.0, 556.0)
        assert location in result.locations

    def test_insert_outlier_then_lookup(self):
        table = make_table()
        hermit = build_hermit(table)
        row = {"pk": 99998.0, "host": 1e9, "target": 777.7, "payload": 0.0}
        location = int(table.insert(row))
        hermit.host_index.insert(row["host"], location)
        hermit.insert(row, location)
        result = hermit.lookup_range(777.0, 778.0)
        assert location in result.locations

    def test_delete_removes_row_from_results(self):
        table = make_table()
        hermit = build_hermit(table)
        victim = 17
        row = table.fetch(victim)
        hermit.delete(row, victim)
        hermit.host_index.delete(row["host"], victim)
        table.delete(victim)
        result = hermit.lookup_range(row["target"] - 1.0, row["target"] + 1.0)
        assert victim not in result.locations

    def test_update_target_value(self):
        table = make_table()
        hermit = build_hermit(table)
        location = 23
        old_row = table.fetch(location)
        new_target = 999.0
        table.update(location, {"target": new_target})
        new_row = table.fetch(location)
        hermit.update(old_row, new_row, location)
        assert location in hermit.lookup_range(998.0, 1000.0).locations
        assert location not in hermit.lookup_range(
            old_row["target"] - 0.5, old_row["target"] + 0.5).locations

    def test_reorganize_after_bulk_inserts(self):
        table = make_table(count=1500)
        hermit = build_hermit(table)
        rng = np.random.default_rng(5)
        for i in range(600):
            row = {"pk": 50_000.0 + i, "host": float(rng.uniform(0, 3000)),
                   "target": float(rng.uniform(0, 1000)), "payload": 0.0}
            location = int(table.insert(row))
            hermit.host_index.insert(row["host"], location)
            hermit.insert(row, location)
        if hermit.pending_reorganizations:
            assert hermit.reorganize() > 0
        result = hermit.lookup_range(0.0, 1000.0)
        assert set(result.locations) == brute_force(table, 0.0, 1000.0)


class TestMemory:
    def test_hermit_is_much_smaller_than_complete_index(self):
        table = make_table(count=5000)
        hermit = build_hermit(table)
        complete = BPlusTree()
        slots, targets = table.project(["target"])
        complete.bulk_load((float(t), int(s)) for t, s in zip(targets, slots))
        assert hermit.memory_bytes() < complete.memory_bytes() / 5


class TestLookupBreakdown:
    def test_merge(self):
        first = LookupBreakdown(trs_seconds=1.0, candidates=10, results=8, lookups=1)
        second = LookupBreakdown(host_index_seconds=2.0, candidates=5, results=5,
                                 lookups=1)
        first.merge(second)
        assert first.total_seconds == pytest.approx(3.0)
        assert first.candidates == 15
        assert first.results == 13
        assert first.lookups == 2
        assert first.false_positive_ratio == pytest.approx(2 / 15)

    def test_empty_breakdown_ratios(self):
        empty = LookupBreakdown()
        assert empty.false_positive_ratio == 0.0
        assert empty.total_seconds == 0.0
        assert set(empty.fractions()) == {"TRS-Tree", "Host Index",
                                          "Primary Index", "Base Table"}
