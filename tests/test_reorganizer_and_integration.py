"""Background reorganizer tests and end-to-end integration scenarios."""

import time

import numpy as np
import pytest

from repro.core.reorganize import BackgroundReorganizer
from repro.engine.catalog import IndexMethod
from repro.engine.database import Database
from repro.engine.executor import full_scan
from repro.engine.query import RangePredicate
from repro.storage.identifiers import PointerScheme
from repro.workloads.sensor import generate_sensor, load_sensor, sensor_column
from repro.workloads.stock import generate_stock, high_column, load_stock
from repro.workloads.synthetic import generate_synthetic, load_synthetic


def hermit_database(num_tuples=2000, correlation="linear", noise=0.01, seed=0,
                    scheme=PointerScheme.PHYSICAL):
    dataset = generate_synthetic(num_tuples, correlation, noise_fraction=noise,
                                 seed=seed)
    database = Database(pointer_scheme=scheme)
    table_name = load_synthetic(database, dataset)
    entry = database.create_index("idx_c", table_name, "colC",
                                  method=IndexMethod.HERMIT, host_column="colB")
    return database, table_name, entry.mechanism


class TestBackgroundReorganizer:
    def flood_with_outliers(self, database, table_name, count=800, seed=1):
        rng = np.random.default_rng(seed)
        for i in range(count):
            database.insert(table_name, {
                "colA": 5e7 + i,
                "colB": float(rng.uniform(0, 2e6)),
                "colC": float(rng.uniform(0, 1e6)),
                "colD": 0.0,
            })

    def test_run_once_processes_candidates(self):
        database, table_name, hermit = hermit_database()
        self.flood_with_outliers(database, table_name)
        reorganizer = BackgroundReorganizer(hermit)
        assert hermit.pending_reorganizations > 0
        processed = reorganizer.run_once()
        assert processed > 0
        assert reorganizer.stats.passes == 1
        assert reorganizer.stats.candidates_processed == processed
        # Queries stay exact after reorganization.
        predicate = RangePredicate("colC", 0.0, 500_000.0)
        indexed = database.query(table_name, predicate)
        scanned = full_scan(database.table(table_name), predicate)
        assert indexed.locations == scanned.locations

    def test_background_thread_lifecycle(self):
        database, table_name, hermit = hermit_database(num_tuples=1000)
        self.flood_with_outliers(database, table_name, count=400, seed=2)
        reorganizer = BackgroundReorganizer(hermit, interval_seconds=0.01)
        with reorganizer:
            assert reorganizer.is_running
            deadline = time.time() + 5.0
            while hermit.pending_reorganizations and time.time() < deadline:
                time.sleep(0.01)
        assert not reorganizer.is_running
        assert reorganizer.stats.passes >= 1

    def test_start_is_idempotent(self):
        _, _, hermit = hermit_database(num_tuples=500)
        reorganizer = BackgroundReorganizer(hermit, interval_seconds=0.01)
        reorganizer.start()
        reorganizer.start()
        reorganizer.stop()
        reorganizer.stop()
        assert not reorganizer.is_running


class TestEndToEndScenarios:
    @pytest.mark.parametrize("correlation", ["linear", "sigmoid"])
    @pytest.mark.parametrize("scheme", [PointerScheme.PHYSICAL,
                                        PointerScheme.LOGICAL])
    def test_synthetic_queries_match_scan(self, correlation, scheme):
        database, table_name, _ = hermit_database(
            num_tuples=3000, correlation=correlation, noise=0.03, scheme=scheme)
        table = database.table(table_name)
        rng = np.random.default_rng(4)
        for _ in range(10):
            low = float(rng.uniform(0, 9e5))
            predicate = RangePredicate("colC", low, low + 5e4)
            assert database.query(table_name, predicate).locations == \
                full_scan(table, predicate).locations

    def test_stock_scenario_memory_and_correctness(self):
        database = Database()
        dataset = generate_stock(num_stocks=5, num_days=1500)
        table_name = load_stock(database, dataset)
        for stock in range(5):
            database.create_index(f"idx_high_{stock}", table_name,
                                  high_column(stock), method=IndexMethod.AUTO)
        report = database.memory_report(table_name)
        # Hermit's new indexes are small compared to the existing B+-trees.
        assert report.components["new_indexes"] < report.components[
            "existing_indexes"]
        table = database.table(table_name)
        highs = dataset.columns[high_column(2)]
        low, high = float(np.quantile(highs, 0.3)), float(np.quantile(highs, 0.5))
        predicate = RangePredicate(high_column(2), low, high)
        assert database.query(table_name, predicate).locations == \
            full_scan(table, predicate).locations

    def test_sensor_scenario(self):
        database = Database()
        dataset = generate_sensor(num_tuples=4000, noise_scale=0.5)
        table_name = load_sensor(database, dataset)
        database.create_index("idx_s7", table_name, sensor_column(7),
                              method=IndexMethod.HERMIT, host_column="average")
        table = database.table(table_name)
        readings = dataset.columns[sensor_column(7)]
        low, high = (float(np.quantile(readings, 0.2)),
                     float(np.quantile(readings, 0.4)))
        predicate = RangePredicate(sensor_column(7), low, high)
        indexed = database.query(table_name, predicate)
        assert indexed.locations == full_scan(table, predicate).locations
        assert indexed.breakdown.false_positive_ratio < 0.5

    def test_mixed_workload_with_maintenance(self):
        database, table_name, hermit = hermit_database(num_tuples=2000,
                                                       noise=0.02)
        table = database.table(table_name)
        rng = np.random.default_rng(6)
        live = [int(s) for s in table.live_slots()]
        for step in range(300):
            action = step % 3
            if action == 0:
                location = database.insert(table_name, {
                    "colA": 1e8 + step,
                    "colB": 2.0 * float(rng.uniform(0, 1e6)) + 10.0,
                    "colC": float(rng.uniform(0, 1e6)),
                    "colD": 0.0,
                })
                live.append(location)
            elif action == 1 and live:
                database.delete(table_name, live.pop(0))
            elif live:
                database.update(table_name, live[0],
                                {"colC": float(rng.uniform(0, 1e6))})
        if hermit.pending_reorganizations:
            hermit.reorganize()
        predicate = RangePredicate("colC", 200_000.0, 400_000.0)
        assert database.query(table_name, predicate).locations == \
            full_scan(table, predicate).locations

    def test_many_hermit_indexes_share_one_host(self):
        dataset = generate_synthetic(1500, "linear", noise_fraction=0.01, seed=7)
        database = Database()
        table_name = load_synthetic(database, dataset, extra_correlated_columns=3)
        for i in range(3):
            entry = database.create_index(f"idx_e{i}", table_name, f"colE{i}",
                                          method=IndexMethod.AUTO)
            assert entry.method is IndexMethod.HERMIT
        table = database.table(table_name)
        values = table.column_array("colE1")
        low, high = float(np.quantile(values, 0.1)), float(np.quantile(values, 0.3))
        predicate = RangePredicate("colE1", low, high)
        assert database.query(table_name, predicate).locations == \
            full_scan(table, predicate).locations
