"""Scatter/gather equivalence tests for the sharded execution tier.

The contract under test: a :class:`~repro.sharding.ShardedDatabase` fed an
identical DDL + DML + query trace as a single
:class:`~repro.engine.database.Database` returns exactly the same *rows*
for every query — across every secondary mechanism (B+-tree baseline,
sorted column, Hermit, Correlation Map) and both pointer schemes.  Row
locations themselves differ by construction (the sharded tier globalises
them as ``shard * LOCATION_STRIDE + local``), so results are compared by
primary key after a ``fetch`` round-trip — which simultaneously proves the
global locations resolve.

Most tests run ``mode="inline"`` (deterministic, no processes) — inline
and process shards share one command dispatcher, so the process tests only
need to cover the transport itself (pickling, pipe sync after errors,
concurrent fan-out) plus one end-to-end trace.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.catalog import IndexMethod
from repro.engine.database import Database
from repro.engine.query import QueryRequest, RangePredicate, conjunction
from repro.errors import CatalogError, ConfigurationError
from repro.serving.server import Server
from repro.sharding import LOCATION_STRIDE, ShardedDatabase, uniform_boundaries
from repro.storage.identifiers import PointerScheme
from repro.storage.schema import numeric_schema

pytestmark = pytest.mark.sharding

NUM_ROWS = 4000
DOMAIN = float(NUM_ROWS)


def dataset(seed: int = 0):
    """Shuffled-pk rows with host linearly correlated to target plus noise."""
    rng = np.random.default_rng(seed)
    pk = np.arange(NUM_ROWS, dtype=np.float64)
    rng.shuffle(pk)
    target = rng.uniform(0.0, 1000.0, NUM_ROWS)
    host = 3.0 * target + 5.0 + rng.normal(0.0, 0.5, NUM_ROWS)
    host[: NUM_ROWS // 50] += 4000.0  # outliers
    return {"pk": pk, "host": host, "target": target}


def create_schema():
    return numeric_schema("trace", ["pk", "host", "target"],
                          primary_key="pk")


def create_secondary(database, method: IndexMethod) -> None:
    kwargs = {}
    if method in (IndexMethod.HERMIT, IndexMethod.CORRELATION_MAP):
        kwargs["host_column"] = "host"
    if method is IndexMethod.CORRELATION_MAP:
        kwargs["cm_target_bucket_width"] = 50.0
        kwargs["cm_host_bucket_width"] = 150.0
    database.create_index("idx_host", "trace", "host")
    database.create_index("idx_target", "trace", "target", method=method,
                          **kwargs)


def pk_set(database, result) -> "set[float]":
    if isinstance(database, ShardedDatabase):
        return {database.fetch("trace", loc)["pk"]
                for loc in result.locations}
    entry = database.catalog.table_entry("trace")
    return {entry.table.fetch(loc)["pk"] for loc in result.locations}


def run_trace(reference: Database, sharded: ShardedDatabase) -> None:
    """Identical DML + query trace against both; compare rows by pk."""
    columns = dataset()
    ref_locations = reference.insert_many("trace", dict(columns))
    shard_locations = sharded.insert_many("trace", dict(columns))
    assert len(shard_locations) == NUM_ROWS

    by_pk_ref = dict(zip(columns["pk"].tolist(), ref_locations))
    by_pk_shard = dict(zip(columns["pk"].tolist(), shard_locations))

    # Interleaved mutations: deletes, in-place updates, and a pk move that
    # crosses a shard boundary.
    for pk in columns["pk"][10:40:3].tolist():
        reference.delete("trace", by_pk_ref.pop(pk))
        sharded.delete("trace", by_pk_shard.pop(pk))
    for pk in columns["pk"][100:130:5].tolist():
        reference.update("trace", by_pk_ref[pk], {"target": 1500.0})
        sharded.update("trace", by_pk_shard[pk], {"target": 1500.0})
    moving = columns["pk"][200]
    new_pk = DOMAIN + 17.0  # beyond every boundary: lands on the last shard
    reference.update("trace", by_pk_ref[moving], {"pk": new_pk})
    moved = sharded.update("trace", by_pk_shard[moving], {"pk": new_pk})
    assert sharded.fetch("trace", moved)["pk"] == new_pk

    requests = []
    for low in np.linspace(0.0, 3200.0, 20):
        requests.append(QueryRequest.of(
            "trace", RangePredicate("target", float(low), float(low) + 150.0)))
    requests.append(QueryRequest.of(
        "trace", RangePredicate("target", 1500.0, 1500.0)))
    requests.append(QueryRequest.of("trace", conjunction(
        RangePredicate("target", 200.0, 900.0),
        RangePredicate("host", 1000.0, 2400.0))))

    ref_results = reference.execute_many(requests)
    shard_results = sharded.execute_many(requests)
    for position, (ref, shard) in enumerate(zip(ref_results, shard_results)):
        assert pk_set(reference, ref) == pk_set(sharded, shard), position
    assert sharded.num_rows("trace") == reference.catalog.table_entry(
        "trace").table.num_rows


MECHANISMS = [IndexMethod.BTREE, IndexMethod.SORTED_COLUMN,
              IndexMethod.HERMIT, IndexMethod.CORRELATION_MAP]


class TestEquivalence:
    @pytest.mark.parametrize("method", MECHANISMS, ids=lambda m: m.value)
    @pytest.mark.parametrize("scheme", [PointerScheme.PHYSICAL,
                                        PointerScheme.LOGICAL],
                             ids=lambda s: s.value)
    def test_matches_single_database(self, method, scheme):
        reference = Database(pointer_scheme=scheme)
        reference.create_table(create_schema())
        create_secondary(reference, method)
        with ShardedDatabase(num_shards=3, mode="inline",
                             pointer_scheme=scheme) as sharded:
            sharded.create_table(create_schema(),
                                 uniform_boundaries(0.0, DOMAIN, 3))
            create_secondary(sharded, method)
            run_trace(reference, sharded)

    def test_single_shard_degenerates_to_one_database(self):
        reference = Database()
        reference.create_table(create_schema())
        create_secondary(reference, IndexMethod.HERMIT)
        with ShardedDatabase(num_shards=1, mode="inline") as sharded:
            sharded.create_table(create_schema())
            create_secondary(sharded, IndexMethod.HERMIT)
            run_trace(reference, sharded)


class TestProcessTransport:
    def test_process_mode_end_to_end(self):
        reference = Database()
        reference.create_table(create_schema())
        create_secondary(reference, IndexMethod.HERMIT)
        with ShardedDatabase(num_shards=2, mode="process") as sharded:
            sharded.create_table(create_schema(),
                                 uniform_boundaries(0.0, DOMAIN, 2))
            create_secondary(sharded, IndexMethod.HERMIT)
            run_trace(reference, sharded)

    def test_pipe_stays_in_sync_after_shard_error(self):
        with ShardedDatabase(num_shards=2, mode="process") as sharded:
            sharded.create_table(create_schema(),
                                 uniform_boundaries(0.0, DOMAIN, 2))
            with pytest.raises(CatalogError):
                sharded.insert_many("missing", {"pk": np.arange(4.0)})
            # The failed broadcast must not desynchronise later commands.
            sharded.insert_many("trace", {
                "pk": np.array([1.0, 3000.0]),
                "host": np.array([0.0, 1.0]),
                "target": np.array([0.0, 1.0]),
            })
            assert sharded.shard_row_counts("trace") == [1, 1]


class TestRoutingAndLocations:
    def test_locations_globalised_in_input_order(self):
        with ShardedDatabase(num_shards=4, mode="inline") as sharded:
            sharded.create_table(create_schema(),
                                 uniform_boundaries(0.0, DOMAIN, 4))
            columns = dataset(seed=3)
            locations = sharded.insert_many("trace", columns)
            for pk, location in zip(columns["pk"].tolist(), locations[:50]):
                assert sharded.fetch("trace", location)["pk"] == pk
            shards = {loc // LOCATION_STRIDE for loc in locations}
            assert shards == {0, 1, 2, 3}
            counts = sharded.shard_row_counts("trace")
            assert sum(counts) == NUM_ROWS
            assert min(counts) > 0

    def test_boundary_validation(self):
        with ShardedDatabase(num_shards=3, mode="inline") as sharded:
            with pytest.raises(ConfigurationError):
                sharded.create_table(create_schema())  # missing boundaries
            with pytest.raises(ConfigurationError):
                sharded.create_table(create_schema(), [10.0])  # wrong count
            with pytest.raises(ConfigurationError):
                sharded.create_table(create_schema(), [20.0, 10.0])
        with pytest.raises(ConfigurationError):
            ShardedDatabase(num_shards=0, mode="inline")
        with pytest.raises(ConfigurationError):
            ShardedDatabase(num_shards=2, mode="threads")

    def test_foreign_location_rejected(self):
        with ShardedDatabase(num_shards=2, mode="inline") as sharded:
            sharded.create_table(create_schema(),
                                 uniform_boundaries(0.0, DOMAIN, 2))
            with pytest.raises(ConfigurationError):
                sharded.fetch("trace", 5 * LOCATION_STRIDE)


class TestServingFrontEnd:
    def test_server_sits_in_front_unchanged(self):
        with ShardedDatabase(num_shards=2, mode="inline") as sharded:
            sharded.create_table(create_schema(),
                                 uniform_boundaries(0.0, DOMAIN, 2))
            create_secondary(sharded, IndexMethod.HERMIT)
            columns = dataset(seed=5)
            sharded.insert_many("trace", columns)
            server = Server(sharded)
            try:
                futures = [
                    server.submit(QueryRequest.of(
                        "trace", RangePredicate("target", low, low + 100.0)))
                    for low in np.linspace(0.0, 900.0, 16)
                ]
                direct = sharded.query_many("trace", [
                    RangePredicate("target", low, low + 100.0)
                    for low in np.linspace(0.0, 900.0, 16)
                ])
                for future, expected in zip(futures, direct):
                    got = future.result(timeout=30.0)
                    assert got.locations == expected.locations
                stats = server.stats()
                assert stats.plan_cache.replays > 0
                assert "trace" in stats.plan_cache_per_table
            finally:
                server.close()

    def test_planner_counters_merge_across_shards(self):
        with ShardedDatabase(num_shards=2, mode="inline") as sharded:
            sharded.create_table(create_schema(),
                                 uniform_boundaries(0.0, DOMAIN, 2))
            sharded.insert_many("trace", dataset(seed=6))
            sharded.query_many("trace", [
                RangePredicate("pk", 0.0, 100.0)] * 4)
            totals = sharded.planner_cache_stats()
            per_table = sharded.planner_cache_info()
            # Both shards planned the same 4-query batch once each.
            assert totals.misses == 2
            assert totals.replays == 8 - 2
            assert per_table["trace"] == totals
