"""Regression tests: rejected writes must leave no partial state behind.

Previously a ``Database.update`` whose second change was invalid could apply
the first change to the base table while every secondary mechanism kept the
old value — the index and the table silently diverged, and under logical
pointers the row could vanish from query results.  Writes are now validated
and coerced up front, before the table, the primary index, any mechanism or
the write-ahead log observes anything.

Also covers the typed-error contract of the disk substrate: ``HeapFile``
operations on dead or out-of-range locations raise ``TupleNotFoundError``
(a ``StorageError``), never a page-level internal error.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.catalog import IndexMethod
from repro.engine.database import Database
from repro.engine.query import RangePredicate
from repro.errors import SchemaError, StorageError, TupleNotFoundError
from repro.storage.buffer_pool import BufferPool
from repro.storage.disk import DiskManager
from repro.storage.heap_file import HeapFile
from repro.storage.identifiers import PointerScheme
from repro.storage.schema import Column, DataType, TableSchema, numeric_schema


def build_db(pointer_scheme=PointerScheme.PHYSICAL) -> Database:
    database = Database(pointer_scheme=pointer_scheme)
    schema = TableSchema("t", [
        Column("pk", DataType.INT64),
        Column("a", DataType.FLOAT64),
        Column("b", DataType.FLOAT64),
        Column("s", DataType.STRING, nullable=True),
    ], primary_key="pk")
    database.create_table(schema)
    rng = np.random.default_rng(3)
    a = np.sort(rng.uniform(0.0, 1000.0, 150))
    database.insert_many("t", {
        "pk": np.arange(150, dtype=np.int64),
        "a": a,
        "b": 2.0 * a + rng.normal(0.0, 3.0, 150),
        "s": [f"r{i}" for i in range(150)],
    })
    database.create_index("ix_a", "t", "a")
    database.create_index("ix_b", "t", "b", method=IndexMethod.HERMIT,
                          host_column="a")
    return database


def state_fingerprint(database: Database):
    table = database.table("t")
    predicate_a = RangePredicate("a", 100.0, 800.0)
    predicate_b = RangePredicate("b", 200.0, 1500.0)
    return (
        table.num_rows,
        table.num_slots,
        {name: (s.count, s.minimum, s.maximum)
         for name, s in table.statistics.items()},
        tuple(database.query("t", predicate_a).locations),
        tuple(database.query("t", predicate_b).locations),
        tuple(database.query_with("t", "ix_b", predicate_b).locations),
        table.fetch(10),
    )


@pytest.mark.parametrize("pointer_scheme",
                         [PointerScheme.PHYSICAL, PointerScheme.LOGICAL])
class TestRejectedWritesAreAtomic:
    def test_update_unknown_column_changes_nothing(self, pointer_scheme):
        database = build_db(pointer_scheme)
        before = state_fingerprint(database)
        with pytest.raises(StorageError):
            database.update("t", 10, {"b": 9999.0, "nope": 1.0})
        assert state_fingerprint(database) == before

    def test_update_uncoercible_value_changes_nothing(self, pointer_scheme):
        database = build_db(pointer_scheme)
        before = state_fingerprint(database)
        with pytest.raises(SchemaError):
            # the first change is valid; the second must prevent it applying
            database.update("t", 10, {"a": 1.0, "b": "not-a-number"})
        assert state_fingerprint(database) == before

    def test_update_dead_row_changes_nothing(self, pointer_scheme):
        database = build_db(pointer_scheme)
        database.delete("t", 20)
        before = state_fingerprint(database)
        with pytest.raises(TupleNotFoundError):
            database.update("t", 20, {"b": 1.0})
        assert state_fingerprint(database) == before

    def test_delete_dead_row_changes_nothing(self, pointer_scheme):
        database = build_db(pointer_scheme)
        database.delete("t", 20)
        before = state_fingerprint(database)
        with pytest.raises(TupleNotFoundError):
            database.delete("t", 20)
        with pytest.raises(TupleNotFoundError):
            database.delete("t", 10_000)
        assert state_fingerprint(database) == before

    def test_rejected_insert_many_changes_nothing(self, pointer_scheme):
        database = build_db(pointer_scheme)
        before = state_fingerprint(database)
        with pytest.raises(StorageError):
            database.insert_many("t", {"pk": [900, 901], "a": [1.0],
                                       "b": [1.0, 2.0]})
        with pytest.raises(StorageError):
            database.insert_many("t", {"pk": [900], "a": [1.0],
                                       "b": [2.0], "ghost": [3.0]})
        with pytest.raises(SchemaError):
            database.insert_many("t", {"pk": [900], "a": ["bad"],
                                       "b": [2.0]})
        assert state_fingerprint(database) == before

    def test_update_after_rejection_still_works(self, pointer_scheme):
        """The gate must not poison the row for a subsequent valid write."""
        database = build_db(pointer_scheme)
        with pytest.raises(SchemaError):
            database.update("t", 10, {"b": "bad"})
        database.update("t", 10, {"b": 777.0})
        assert database.table("t").fetch(10)["b"] == 777.0
        predicate = RangePredicate("b", 776.0, 778.0)
        assert 10 in database.query("t", predicate).locations


class TestHeapFileTypedErrors:
    def build(self):
        pool = BufferPool(DiskManager(), capacity=8)
        heap = HeapFile(numeric_schema("h", ["pk", "v"], primary_key="pk"),
                        pool)
        locations = heap.insert_many(
            [{"pk": float(i), "v": float(i) * 2.0} for i in range(10)]
        )
        return heap, locations

    def test_fetch_dead_and_out_of_range(self):
        heap, locations = self.build()
        heap.delete(locations[3])
        with pytest.raises(TupleNotFoundError):
            heap.fetch(locations[3])
        with pytest.raises(TupleNotFoundError):
            heap.fetch(10_000_000)
        with pytest.raises(TupleNotFoundError):
            heap.fetch(-1)

    def test_value_dead_and_out_of_range(self):
        heap, locations = self.build()
        heap.delete(locations[3])
        with pytest.raises(TupleNotFoundError):
            heap.value(locations[3], "v")
        with pytest.raises(TupleNotFoundError):
            heap.value(10_000_000, "v")

    def test_delete_dead_and_out_of_range(self):
        heap, locations = self.build()
        heap.delete(locations[3])
        rows_before = heap.num_rows
        with pytest.raises(TupleNotFoundError):
            heap.delete(locations[3])
        with pytest.raises(TupleNotFoundError):
            heap.delete(10_000_000)
        assert heap.num_rows == rows_before

    def test_typed_errors_are_storage_errors(self):
        heap, locations = self.build()
        heap.delete(locations[0])
        with pytest.raises(StorageError):
            heap.fetch(locations[0])
