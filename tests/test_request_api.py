"""The unified request/result API: ``QueryRequest`` in, ``QueryResult`` out.

``Database.execute`` / ``execute_many`` are the canonical read entry
points; ``query`` / ``query_many`` are thin wrappers over them.  These
tests pin the request constructors' coercion rules, the result transport
fields (plain-list locations, plan, group size, epoch), wrapper
equivalence, multi-table batching, and the input-order guarantee of
``execute_many``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.catalog import IndexMethod
from repro.engine.database import Database
from repro.engine.query import (
    ConjunctiveQuery,
    QueryRequest,
    QueryResult,
    RangePredicate,
    conjunction,
)
from repro.storage.schema import numeric_schema


@pytest.fixture(scope="module")
def database() -> Database:
    """Two tables with sorted indexes, small enough to brute-force."""
    rng = np.random.default_rng(3)
    db = Database()
    for name, rows in (("alpha", 1_500), ("beta", 900)):
        target = rng.uniform(0.0, 1_000.0, size=rows)
        db.create_table(numeric_schema(
            name, ["pk", "host", "target", "payload"], primary_key="pk"))
        db.insert_many(name, {
            "pk": np.arange(rows, dtype=np.float64),
            "host": 2.0 * target + 10.0,
            "target": target,
            "payload": rng.uniform(0.0, 1.0, size=rows),
        })
        db.create_index(f"idx_{name}", name, "target",
                        method=IndexMethod.SORTED_COLUMN)
    return db


def brute_force(db: Database, table: str, low: float, high: float) -> list:
    slots, values = db.table(table).project(["target"])
    mask = (values >= low) & (values <= high)
    return np.sort(slots[mask]).tolist()


class TestQueryRequestConstructors:
    def test_point_is_degenerate_range(self):
        request = QueryRequest.point("t", "c", 5.0)
        assert request.is_point
        (predicate,) = request.predicates
        assert (predicate.low, predicate.high) == (5.0, 5.0)

    def test_range(self):
        request = QueryRequest.range("t", "c", 1.0, 2.0)
        assert not request.is_point
        assert request.table == "t"
        assert request.query.predicates[0].column == "c"

    def test_conjunctive(self):
        request = QueryRequest.conjunctive("t", [
            RangePredicate("a", 0.0, 1.0), RangePredicate("b", 2.0, 3.0)])
        assert [p.column for p in request.predicates] == ["a", "b"]
        assert not request.is_point

    def test_of_coerces_every_accepted_shape(self):
        predicate = RangePredicate("c", 0.0, 1.0)
        from_predicate = QueryRequest.of("t", predicate)
        from_list = QueryRequest.of("t", [predicate])
        from_query = QueryRequest.of("t", conjunction(predicate))
        assert (from_predicate.query.predicates
                == from_list.query.predicates
                == from_query.query.predicates)

    def test_requests_are_frozen_and_hashable(self):
        request = QueryRequest.point("t", "c", 5.0)
        with pytest.raises(AttributeError):
            request.table = "other"  # type: ignore[misc]
        assert request == QueryRequest.point("t", "c", 5.0)
        assert len({request, QueryRequest.point("t", "c", 5.0)}) == 1


class TestExecute:
    def test_execute_returns_transport_result(self, database):
        request = QueryRequest.range("alpha", "target", 100.0, 160.0)
        result = database.execute(request)
        assert isinstance(result, QueryResult)
        assert isinstance(result.locations, list)
        assert result.locations == brute_force(database, "alpha", 100.0, 160.0)
        assert result.used_index == "idx_alpha"
        assert result.plan is not None
        assert result.epoch is not None
        assert len(result) == len(result.locations)

    def test_query_wrapper_matches_execute(self, database):
        predicate = RangePredicate("target", 250.0, 300.0)
        via_execute = database.execute(QueryRequest.of("alpha", predicate))
        via_query = database.query("alpha", predicate)
        assert via_query.locations == via_execute.locations
        assert via_query.used_index == via_execute.used_index

    def test_unsatisfiable_conjunction_is_empty(self, database):
        request = QueryRequest.conjunctive("alpha", [
            RangePredicate("target", 0.0, 10.0),
            RangePredicate("target", 500.0, 600.0),
        ])
        result = database.execute(request)
        assert result.locations == []


class TestExecuteMany:
    def test_multi_table_batch_keeps_input_order(self, database):
        requests = [
            QueryRequest.range("alpha", "target", 0.0, 50.0),
            QueryRequest.range("beta", "target", 100.0, 180.0),
            QueryRequest.range("alpha", "target", 900.0, 1_000.0),
            QueryRequest.point("beta", "target", 123.456),
        ]
        results = database.execute_many(requests)
        assert len(results) == len(requests)
        for request, result in zip(requests, results):
            (predicate,) = request.predicates
            assert result.locations == brute_force(
                database, request.table, predicate.low, predicate.high)
            assert result.used_index == f"idx_{request.table}"

    def test_batch_matches_per_call_execute(self, database):
        requests = [QueryRequest.range("alpha", "target", low, low + 40.0)
                    for low in (0.0, 200.0, 400.0, 600.0, 800.0)]
        batched = database.execute_many(requests)
        for request, result in zip(requests, batched):
            assert result.locations == database.execute(request).locations

    def test_batch_shares_one_epoch(self, database):
        requests = [QueryRequest.range("alpha", "target", 0.0, 10.0),
                    QueryRequest.range("beta", "target", 0.0, 10.0)]
        epochs = {result.epoch for result in database.execute_many(requests)}
        assert len(epochs) == 1

    def test_same_shape_requests_share_plan_group(self, database):
        requests = [QueryRequest.point("alpha", "target", float(v))
                    for v in (10.0, 20.0, 30.0)]
        results = database.execute_many(requests)
        assert all(result.group_size == 3 for result in results)
        assert len({id(result.plan) for result in results}) == 1

    def test_query_many_wrapper_matches_execute_many(self, database):
        predicates = [RangePredicate("target", 100.0, 140.0),
                      RangePredicate("target", 500.0, 505.0)]
        via_wrapper = database.query_many("alpha", predicates)
        via_execute = database.execute_many(
            [QueryRequest.of("alpha", p) for p in predicates])
        for want, got in zip(via_execute, via_wrapper):
            assert want.locations == got.locations

    def test_empty_batch(self, database):
        assert database.execute_many([]) == []


class TestEpochVisibility:
    def test_mutation_advances_result_epoch(self):
        db = Database()
        db.create_table(numeric_schema("t", ["pk", "v"], primary_key="pk"))
        db.insert_many("t", {"pk": np.arange(10, dtype=np.float64),
                             "v": np.arange(10, dtype=np.float64)})
        request = QueryRequest.range("t", "v", 0.0, 100.0)
        before = db.execute(request)
        db.insert_many("t", {"pk": np.array([100.0]), "v": np.array([50.0])})
        after = db.execute(request)
        assert after.epoch > before.epoch
        assert len(after.locations) == len(before.locations) + 1
