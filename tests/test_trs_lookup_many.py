"""Equivalence tests for the vectorized TRS-Tree batch translation.

``TRSTree.lookup_many`` must agree with a loop of scalar ``lookup`` calls
for every leaf-model variant the builder can select (linear, log-linear,
piecewise, outlier-only demotion), every tree shape (single leaf, deep
splits, empty build) and every predicate position (inside the built
domain, straddling its edges, fully outside).

The batch path differs from the scalar one in exactly two sanctioned ways:

* host ranges come back sorted and coalesced (adjacent-within-one-ulp
  ranges merge — no representable float can fall in the gap, so the
  candidate set is unchanged), whereas the scalar walk emits them in BFS
  leaf order un-merged;
* outlier tids within one query may come back in a different (DFS) leaf
  order.

The comparisons below normalise the scalar output through the same
coalescing rule and sort both outlier lists, then demand exact equality —
including the per-query ``nodes_visited`` / ``leaves_visited`` counters,
which pin the batch descent to visiting precisely the scalar node set.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import TRSTreeConfig
from repro.core.trs_tree import TRSTree, coalesce_sorted_ranges
from repro.index.base import KeyRange

SETTINGS = settings(max_examples=20, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])


def normalise(host_ranges: list[KeyRange]) -> list[tuple[float, float]]:
    """Sort and ulp-coalesce scalar host ranges into the batch's canon."""
    if not host_ranges:
        return []
    ordered = sorted(host_ranges, key=lambda r: r.low)
    merged: list[list[float]] = [[ordered[0].low, ordered[0].high]]
    for key_range in ordered[1:]:
        previous = merged[-1]
        if key_range.low > np.nextafter(previous[1], np.inf):
            merged.append([key_range.low, key_range.high])
        else:
            previous[1] = max(previous[1], key_range.high)
    return [(low, high) for low, high in merged]


def assert_batch_matches_scalar(tree: TRSTree,
                                predicates: list[KeyRange]) -> None:
    batch = tree.lookup_many(predicates)
    assert batch.num_queries == len(predicates)
    for position, predicate in enumerate(predicates):
        scalar = tree.lookup(predicate)
        batch_ranges = [(r.low, r.high)
                        for r in batch.host_ranges_for(position)]
        assert batch_ranges == normalise(scalar.host_ranges), (
            position, predicate)
        assert (sorted(batch.outliers_for(position).tolist())
                == sorted(scalar.outlier_tids)), (position, predicate)
        assert int(batch.leaves_visited[position]) == scalar.leaves_visited
        assert int(batch.nodes_visited[position]) == scalar.nodes_visited


def probe_batch(low: float, high: float) -> list[KeyRange]:
    """Predicates covering inside/edge/outside positions of [low, high]."""
    span = max(high - low, 1.0)
    grid = np.linspace(low - 0.25 * span, high + 0.25 * span, 17)
    predicates = [KeyRange(float(a), float(b))
                  for a in grid for b in grid[::4] if b >= a]
    # Point predicates exercise the zero-width descent.
    predicates += [KeyRange(float(v), float(v)) for v in grid[::3]]
    return predicates


def make_tree(targets, hosts, **config_kwargs) -> TRSTree:
    config = TRSTreeConfig(min_split_size=8, **config_kwargs)
    tree = TRSTree(config)
    tree.build(np.asarray(targets, dtype=np.float64),
               np.asarray(hosts, dtype=np.float64),
               np.arange(len(targets)))
    return tree


class TestLeafModelVariants:
    """One dataset per leaf-model family the builder can select."""

    def test_linear_single_leaf(self):
        rng = np.random.default_rng(0)
        targets = rng.uniform(0.0, 1000.0, 2000)
        tree = make_tree(targets, 2.0 * targets + 5.0)
        assert tree.num_leaves == 1
        assert_batch_matches_scalar(tree, probe_batch(0.0, 1000.0))

    def test_linear_with_outliers(self):
        rng = np.random.default_rng(1)
        targets = rng.uniform(0.0, 1000.0, 2000)
        hosts = 2.0 * targets + 5.0
        hosts[:40] += 5000.0
        tree = make_tree(targets, hosts)
        assert tree.num_outliers >= 40
        assert_batch_matches_scalar(tree, probe_batch(0.0, 1000.0))

    def test_log_linear_split_tree(self):
        rng = np.random.default_rng(2)
        targets = rng.uniform(1.0, 1000.0, 4000)
        hosts = np.exp(targets / 250.0) * (1.0 + rng.normal(0, 0.01, 4000))
        tree = make_tree(targets, hosts)
        assert_batch_matches_scalar(tree, probe_batch(1.0, 1000.0))

    def test_piecewise_nonlinear(self):
        rng = np.random.default_rng(3)
        targets = rng.uniform(0.0, 1000.0, 4000)
        hosts = np.sqrt(targets) * 100.0 + rng.normal(0, 1.0, 4000)
        tree = make_tree(targets, hosts)
        assert tree.num_leaves > 1
        assert_batch_matches_scalar(tree, probe_batch(0.0, 1000.0))

    def test_outlier_only_demotion(self):
        # Uncorrelated noise at max_height=1 cannot split: the leaf demotes
        # to exact outliers (or keeps a wide band) — either way the batch
        # walk must mirror it.
        rng = np.random.default_rng(4)
        targets = rng.uniform(0.0, 100.0, 500)
        hosts = rng.uniform(0.0, 100.0, 500)
        tree = make_tree(targets, hosts, max_height=1)
        assert_batch_matches_scalar(tree, probe_batch(0.0, 100.0))

    def test_deep_sine_tree(self):
        rng = np.random.default_rng(5)
        targets = rng.uniform(0.0, 1000.0, 5000)
        hosts = np.sin(targets / 50.0) * 500.0 + rng.normal(0, 2.0, 5000)
        tree = make_tree(targets, hosts)
        assert tree.height > 1
        assert_batch_matches_scalar(tree, probe_batch(0.0, 1000.0))


class TestShapeEdges:
    def test_empty_tree(self):
        tree = TRSTree()
        tree.build([], [], [])
        batch = tree.lookup_many([KeyRange(0.0, 10.0), KeyRange(-5.0, -1.0)])
        assert batch.num_queries == 2
        assert batch.host_lows.size == 0
        assert batch.outlier_tids.size == 0
        assert_batch_matches_scalar(
            tree, [KeyRange(0.0, 10.0), KeyRange(-5.0, -1.0)])

    def test_unbuilt_tree(self):
        tree = TRSTree()
        batch = tree.lookup_many([KeyRange(0.0, 1.0)])
        assert batch.num_queries == 1
        assert batch.host_lows.size == 0

    def test_empty_batch(self):
        targets = np.linspace(0.0, 100.0, 200)
        tree = make_tree(targets, targets * 3.0)
        batch = tree.lookup_many([])
        assert batch.num_queries == 0
        assert batch.host_offsets.tolist() == [0]

    def test_zero_width_target_domain(self):
        # All targets equal: every routing boundary collapses to one point.
        targets = np.full(300, 42.0)
        hosts = np.linspace(0.0, 10.0, 300)
        tree = make_tree(targets, hosts)
        predicates = [KeyRange(42.0, 42.0), KeyRange(41.0, 43.0),
                      KeyRange(0.0, 41.9), KeyRange(42.1, 50.0)]
        assert_batch_matches_scalar(tree, predicates)

    def test_predicates_beyond_built_domain(self):
        # Edge leaves are open-ended for post-build inserts; out-of-domain
        # predicates must still visit them, batched exactly like scalar.
        rng = np.random.default_rng(6)
        targets = rng.uniform(100.0, 200.0, 1000)
        tree = make_tree(targets, targets * -1.5 + 7.0)
        predicates = [KeyRange(-1e6, 50.0), KeyRange(250.0, 1e6),
                      KeyRange(-np.inf, np.inf), KeyRange(0.0, 1000.0)]
        assert_batch_matches_scalar(tree, predicates)

    def test_after_incremental_inserts_and_deletes(self):
        rng = np.random.default_rng(7)
        targets = rng.uniform(0.0, 1000.0, 2000)
        hosts = 3.0 * targets + rng.normal(0, 0.5, 2000)
        tree = make_tree(targets, hosts)
        for i in range(200):
            tree.insert(float(1000.0 + i), float(-5000.0 - i), 2000 + i)
        for i in range(0, 100, 3):
            tree.delete(float(targets[i]), float(hosts[i]), i)
        assert_batch_matches_scalar(tree, probe_batch(0.0, 1200.0))


class TestCoalesce:
    def test_merges_overlap_and_ulp_adjacency(self):
        lows = np.array([0.0, 5.0, np.nextafter(10.0, np.inf), 20.0])
        highs = np.array([6.0, 10.0, 12.0, 25.0])
        ids = np.zeros(4, dtype=np.int64)
        out_lows, out_highs, offsets = coalesce_sorted_ranges(
            lows, highs, ids, 1)
        assert out_lows.tolist() == [0.0, 20.0]
        assert out_highs.tolist() == [12.0, 25.0]
        assert offsets.tolist() == [0, 2]

    def test_gap_wider_than_one_ulp_preserved(self):
        lows = np.array([0.0, 10.0 + 1e-9])
        highs = np.array([10.0, 20.0])
        ids = np.zeros(2, dtype=np.int64)
        out_lows, _, offsets = coalesce_sorted_ranges(lows, highs, ids, 1)
        assert out_lows.tolist() == [0.0, 10.0 + 1e-9]
        assert offsets.tolist() == [0, 2]

    def test_never_merges_across_queries(self):
        lows = np.array([0.0, 5.0])
        highs = np.array([10.0, 15.0])
        ids = np.array([0, 1], dtype=np.int64)
        out_lows, out_highs, offsets = coalesce_sorted_ranges(
            lows, highs, ids, 2)
        assert out_lows.tolist() == [0.0, 5.0]
        assert out_highs.tolist() == [10.0, 15.0]
        assert offsets.tolist() == [0, 1, 2]


correlated_rows = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
        st.floats(min_value=-500.0, max_value=500.0, allow_nan=False),
        st.booleans(),
    ),
    min_size=0, max_size=300,
)

predicate_bounds = st.lists(
    st.tuples(
        st.floats(min_value=-200.0, max_value=1200.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=600.0, allow_nan=False),
    ),
    min_size=1, max_size=16,
)


class TestPropertyEquivalence:
    @SETTINGS
    @given(rows=correlated_rows, bounds=predicate_bounds)
    def test_lookup_many_matches_scalar_loop(self, rows, bounds):
        targets = np.array([t for t, _, _ in rows], dtype=np.float64)
        # Mostly-linear hosts with hypothesis-chosen perturbations on the
        # flagged rows: enough structure to build bands, enough noise to
        # populate outlier buffers and force splits.
        hosts = np.array(
            [2.0 * t + (noise if flagged else 0.0)
             for t, noise, flagged in rows], dtype=np.float64)
        tree = TRSTree(TRSTreeConfig(min_split_size=8))
        tree.build(targets, hosts, np.arange(len(rows)))
        predicates = [KeyRange(low, low + span) for low, span in bounds]
        assert_batch_matches_scalar(tree, predicates)
