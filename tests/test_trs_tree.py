"""Unit tests for TRS-Tree construction, lookup and maintenance."""

import numpy as np
import pytest

from repro.core.config import TRSTreeConfig
from repro.core.trs_tree import TRSTree
from repro.errors import ConfigurationError, StorageError
from repro.index.base import KeyRange


def linear_data(count=2000, noise_positions=(), seed=0):
    """Target/host/tid arrays with host = 2*target + 5, plus forced outliers."""
    rng = np.random.default_rng(seed)
    targets = rng.uniform(0.0, 1000.0, size=count)
    hosts = 2.0 * targets + 5.0
    for position in noise_positions:
        hosts[position] += 5000.0
    tids = np.arange(count)
    return targets, hosts, tids


def brute_force(targets, predicate: KeyRange):
    return set(int(i) for i in np.flatnonzero(
        (targets >= predicate.low) & (targets <= predicate.high)))


def hermit_style_answer(tree: TRSTree, hosts, targets, predicate: KeyRange):
    """Resolve a TRS-Tree lookup the way Hermit does, without the host index.

    Candidates are the union of tuples whose host value falls in a returned
    host range and the outlier tids; validation filters on the target value.
    """
    result = tree.lookup(predicate)
    candidates = set(result.outlier_tids)
    for host_range in result.host_ranges:
        candidates.update(
            int(i) for i in np.flatnonzero(
                (hosts >= host_range.low) & (hosts <= host_range.high))
        )
    return {tid for tid in candidates
            if predicate.contains(float(targets[int(tid)]))}


class TestConfig:
    def test_defaults_match_paper(self):
        config = TRSTreeConfig()
        assert config.node_fanout == 8
        assert config.max_height == 10
        assert config.outlier_ratio == 0.1
        assert config.error_bound == 2.0

    @pytest.mark.parametrize("kwargs", [
        {"node_fanout": 1},
        {"max_height": 0},
        {"outlier_ratio": 1.5},
        {"error_bound": -1.0},
        {"sample_fraction": 0.0},
        {"sample_fraction": 2.0},
        {"min_split_size": 1},
    ])
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            TRSTreeConfig(**kwargs)


class TestConstruction:
    def test_perfect_linear_yields_single_leaf(self):
        targets, hosts, tids = linear_data()
        tree = TRSTree()
        tree.build(targets, hosts, tids)
        assert tree.num_leaves == 1
        assert tree.height == 1
        assert tree.num_outliers == 0

    def test_sparse_noise_becomes_outliers_without_splitting(self):
        targets, hosts, tids = linear_data(noise_positions=range(0, 40))
        tree = TRSTree()
        tree.build(targets, hosts, tids)
        assert tree.num_leaves == 1
        assert tree.num_outliers == 40

    def test_nonlinear_correlation_splits(self):
        rng = np.random.default_rng(1)
        targets = rng.uniform(0.0, 1000.0, size=5000)
        hosts = np.sqrt(targets) * 100.0
        tree = TRSTree()
        tree.build(targets, hosts, np.arange(5000))
        assert tree.num_leaves > 1
        assert tree.height > 1

    def test_max_height_bounds_depth(self):
        rng = np.random.default_rng(2)
        targets = rng.uniform(0.0, 1000.0, size=3000)
        hosts = np.sin(targets / 20.0) * 1000.0
        config = TRSTreeConfig(max_height=3, node_fanout=4)
        tree = TRSTree(config)
        tree.build(targets, hosts, np.arange(3000))
        assert tree.height <= 3

    def test_empty_build(self):
        tree = TRSTree()
        tree.build([], [], [])
        assert tree.num_leaves == 1
        assert tree.lookup(KeyRange(0, 10)).host_ranges == [KeyRange(0.0, 0.0)]

    def test_mismatched_lengths_rejected(self):
        tree = TRSTree()
        with pytest.raises(StorageError):
            tree.build([1.0, 2.0], [1.0], [0, 1])

    def test_parallel_build_matches_serial(self):
        rng = np.random.default_rng(3)
        targets = rng.uniform(0.0, 1000.0, size=4000)
        hosts = np.sqrt(targets) * 50.0
        serial = TRSTree()
        serial.build(targets, hosts, np.arange(4000), parallelism=1)
        parallel = TRSTree()
        parallel.build(targets, hosts, np.arange(4000), parallelism=4)
        assert serial.num_leaves == parallel.num_leaves
        probe = KeyRange(200.0, 300.0)
        assert hermit_style_answer(serial, hosts, targets, probe) == \
            hermit_style_answer(parallel, hosts, targets, probe)

    def test_sampling_optimisation_still_correct(self):
        rng = np.random.default_rng(4)
        targets = rng.uniform(0.0, 1000.0, size=5000)
        hosts = np.sqrt(targets) * 100.0
        config = TRSTreeConfig(sample_fraction=0.05)
        tree = TRSTree(config)
        tree.build(targets, hosts, np.arange(5000))
        probe = KeyRange(100.0, 150.0)
        assert hermit_style_answer(tree, hosts, targets, probe) == \
            brute_force(targets, probe)


class TestLookup:
    def test_range_lookup_covers_all_matches(self):
        targets, hosts, tids = linear_data(noise_positions=range(0, 30))
        tree = TRSTree()
        tree.build(targets, hosts, tids)
        probe = KeyRange(250.0, 400.0)
        assert hermit_style_answer(tree, hosts, targets, probe) == \
            brute_force(targets, probe)

    def test_point_lookup(self):
        targets, hosts, tids = linear_data()
        tree = TRSTree()
        tree.build(targets, hosts, tids)
        value = float(targets[10])
        answer = hermit_style_answer(tree, hosts, targets, KeyRange(value, value))
        assert 10 in answer

    def test_lookup_outside_domain(self):
        targets, hosts, tids = linear_data()
        tree = TRSTree()
        tree.build(targets, hosts, tids)
        result = tree.lookup(KeyRange(5000.0, 6000.0))
        # The edge leaf is treated as open-ended (it would hold any
        # out-of-domain inserts), but no stored tuple matches.
        assert result.outlier_tids == []
        assert hermit_style_answer(tree, hosts, targets,
                                   KeyRange(5000.0, 6000.0)) == set()

    def test_host_ranges_are_disjoint(self):
        rng = np.random.default_rng(5)
        targets = rng.uniform(0.0, 1000.0, size=5000)
        hosts = np.sqrt(targets) * 100.0
        tree = TRSTree()
        tree.build(targets, hosts, np.arange(5000))
        result = tree.lookup(KeyRange(0.0, 1000.0))
        for first, second in zip(result.host_ranges, result.host_ranges[1:]):
            assert first.high < second.low

    def test_empty_tree_lookup(self):
        tree = TRSTree()
        result = tree.lookup(KeyRange(0, 1))
        assert result.host_ranges == []
        assert result.outlier_tids == []


class TestMaintenance:
    def test_insert_covered_tuple_leaves_no_trace(self):
        targets, hosts, tids = linear_data()
        tree = TRSTree()
        tree.build(targets, hosts, tids)
        tree.insert(500.0, 2.0 * 500.0 + 5.0, 99999)
        assert tree.num_outliers == 0

    def test_insert_outlier_is_recoverable(self):
        targets, hosts, tids = linear_data()
        tree = TRSTree()
        tree.build(targets, hosts, tids)
        tree.insert(500.0, 99999.0, 77777)
        result = tree.lookup(KeyRange(499.0, 501.0))
        assert 77777 in result.outlier_tids

    def test_delete_removes_outlier(self):
        targets, hosts, tids = linear_data()
        tree = TRSTree()
        tree.build(targets, hosts, tids)
        tree.insert(500.0, 99999.0, 77777)
        tree.delete(500.0, 99999.0, 77777)
        result = tree.lookup(KeyRange(499.0, 501.0))
        assert 77777 not in result.outlier_tids

    def test_update_moves_outlier(self):
        targets, hosts, tids = linear_data()
        tree = TRSTree()
        tree.build(targets, hosts, tids)
        tree.insert(500.0, 99999.0, 77777)
        tree.update(500.0, 99999.0, 700.0, 88888.0, 77777)
        assert 77777 not in tree.lookup(KeyRange(499.0, 501.0)).outlier_tids
        assert 77777 in tree.lookup(KeyRange(699.0, 701.0)).outlier_tids

    def test_maintenance_on_empty_tree_is_noop(self):
        tree = TRSTree()
        tree.insert(1.0, 1.0, 1)
        tree.delete(1.0, 1.0, 1)

    def test_heavy_inserts_flag_split_candidates(self):
        targets, hosts, tids = linear_data(count=3000)
        tree = TRSTree()
        tree.build(targets, hosts, tids)
        rng = np.random.default_rng(6)
        for i in range(600):
            tree.insert(float(rng.uniform(0, 1000)), float(rng.uniform(0, 1e6)),
                        100000 + i)
        assert tree.pending_reorganizations > 0


class TestReorganization:
    def build_with_provider(self):
        targets, hosts, tids = linear_data(count=3000)
        store = {
            "targets": targets.copy(), "hosts": hosts.copy(), "tids": tids.copy(),
        }
        tree = TRSTree()
        tree.build(store["targets"], store["hosts"], store["tids"])

        def provider(key_range: KeyRange):
            mask = (store["targets"] >= key_range.low) & (
                store["targets"] <= key_range.high)
            return (store["targets"][mask], store["hosts"][mask],
                    store["tids"][mask])

        return tree, store, provider

    def test_reorganize_absorbs_new_outliers(self):
        tree, store, provider = self.build_with_provider()
        rng = np.random.default_rng(7)
        new_targets = rng.uniform(0.0, 1000.0, size=800)
        new_hosts = rng.uniform(0.0, 1e6, size=800)
        # Tids double as positions into the concatenated arrays below so the
        # brute-force oracle can validate them.
        new_tids = np.arange(3000, 3800)
        for m, n, tid in zip(new_targets, new_hosts, new_tids):
            tree.insert(float(m), float(n), int(tid))
        store["targets"] = np.concatenate([store["targets"], new_targets])
        store["hosts"] = np.concatenate([store["hosts"], new_hosts])
        store["tids"] = np.concatenate([store["tids"], new_tids])

        assert tree.pending_reorganizations > 0
        processed = tree.reorganize(provider)
        assert processed > 0
        assert tree.pending_reorganizations == 0
        # After the rebuild the tree either split (more leaves) or re-fit; the
        # query answers must still be exact and every stored outlier must be a
        # live tuple.
        probe = KeyRange(100.0, 300.0)
        answer = hermit_style_answer(tree, store["hosts"], store["targets"], probe)
        assert answer == brute_force(store["targets"], probe)
        assert tree.num_leaves >= 1
        assert tree.num_outliers <= len(store["targets"])

    def test_reorganize_respects_max_candidates(self):
        tree, store, provider = self.build_with_provider()
        rng = np.random.default_rng(8)
        for i in range(800):
            tree.insert(float(rng.uniform(0, 1000)), float(rng.uniform(0, 1e6)),
                        50_000 + i)
        pending = tree.pending_reorganizations
        if pending > 1:
            processed = tree.reorganize(provider, max_candidates=1)
            assert processed == 1

    def test_reorganize_children_rebuilds_subtrees(self):
        rng = np.random.default_rng(9)
        targets = rng.uniform(0.0, 1000.0, size=4000)
        hosts = np.sqrt(targets) * 100.0
        tids = np.arange(4000)
        tree = TRSTree()
        tree.build(targets, hosts, tids)

        def provider(key_range: KeyRange):
            mask = (targets >= key_range.low) & (targets <= key_range.high)
            return targets[mask], hosts[mask], tids[mask]

        tree.reorganize_children(provider, [0, 1])
        probe = KeyRange(0.0, 400.0)
        assert hermit_style_answer(tree, hosts, targets, probe) == \
            brute_force(targets, probe)

    def test_memory_accounting_walks_all_nodes(self):
        tree, _, _ = self.build_with_provider()
        single_leaf_bytes = tree.memory_bytes()
        assert single_leaf_bytes > 0
        assert tree.num_nodes == tree.num_leaves
