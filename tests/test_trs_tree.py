"""Unit tests for TRS-Tree construction, lookup and maintenance."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import TRSTreeConfig
from repro.core.node import route_index, route_indices
from repro.core.trs_tree import TRSTree
from repro.errors import ConfigurationError, StorageError
from repro.index.base import KeyRange


def linear_data(count=2000, noise_positions=(), seed=0):
    """Target/host/tid arrays with host = 2*target + 5, plus forced outliers."""
    rng = np.random.default_rng(seed)
    targets = rng.uniform(0.0, 1000.0, size=count)
    hosts = 2.0 * targets + 5.0
    for position in noise_positions:
        hosts[position] += 5000.0
    tids = np.arange(count)
    return targets, hosts, tids


def brute_force(targets, predicate: KeyRange):
    return {int(i) for i in np.flatnonzero(
        (targets >= predicate.low) & (targets <= predicate.high))}


def hermit_style_answer(tree: TRSTree, hosts, targets, predicate: KeyRange):
    """Resolve a TRS-Tree lookup the way Hermit does, without the host index.

    Candidates are the union of tuples whose host value falls in a returned
    host range and the outlier tids; validation filters on the target value.
    """
    result = tree.lookup(predicate)
    candidates = set(result.outlier_tids)
    for host_range in result.host_ranges:
        candidates.update(
            int(i) for i in np.flatnonzero(
                (hosts >= host_range.low) & (hosts <= host_range.high))
        )
    return {tid for tid in candidates
            if predicate.contains(float(targets[int(tid)]))}


class TestConfig:
    def test_defaults_match_paper(self):
        config = TRSTreeConfig()
        assert config.node_fanout == 8
        assert config.max_height == 10
        assert config.outlier_ratio == 0.1
        assert config.error_bound == 2.0

    @pytest.mark.parametrize("kwargs", [
        {"node_fanout": 1},
        {"max_height": 0},
        {"outlier_ratio": 1.5},
        {"error_bound": -1.0},
        {"sample_fraction": 0.0},
        {"sample_fraction": 2.0},
        {"min_split_size": 1},
    ])
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            TRSTreeConfig(**kwargs)


class TestConstruction:
    def test_perfect_linear_yields_single_leaf(self):
        targets, hosts, tids = linear_data()
        tree = TRSTree()
        tree.build(targets, hosts, tids)
        assert tree.num_leaves == 1
        assert tree.height == 1
        assert tree.num_outliers == 0

    def test_sparse_noise_becomes_outliers_without_splitting(self):
        targets, hosts, tids = linear_data(noise_positions=range(0, 40))
        tree = TRSTree()
        tree.build(targets, hosts, tids)
        assert tree.num_leaves == 1
        assert tree.num_outliers == 40

    def test_nonlinear_correlation_splits(self):
        rng = np.random.default_rng(1)
        targets = rng.uniform(0.0, 1000.0, size=5000)
        hosts = np.sqrt(targets) * 100.0
        tree = TRSTree()
        tree.build(targets, hosts, np.arange(5000))
        assert tree.num_leaves > 1
        assert tree.height > 1

    def test_max_height_bounds_depth(self):
        rng = np.random.default_rng(2)
        targets = rng.uniform(0.0, 1000.0, size=3000)
        hosts = np.sin(targets / 20.0) * 1000.0
        config = TRSTreeConfig(max_height=3, node_fanout=4)
        tree = TRSTree(config)
        tree.build(targets, hosts, np.arange(3000))
        assert tree.height <= 3

    def test_empty_build(self):
        tree = TRSTree()
        tree.build([], [], [])
        assert tree.num_leaves == 1
        # An empty leaf has nothing behind its band: no host probe at all.
        assert tree.lookup(KeyRange(0, 10)).host_ranges == []

    def test_mismatched_lengths_rejected(self):
        tree = TRSTree()
        with pytest.raises(StorageError):
            tree.build([1.0, 2.0], [1.0], [0, 1])

    def test_parallel_build_matches_serial(self):
        rng = np.random.default_rng(3)
        targets = rng.uniform(0.0, 1000.0, size=4000)
        hosts = np.sqrt(targets) * 50.0
        serial = TRSTree()
        serial.build(targets, hosts, np.arange(4000), parallelism=1)
        parallel = TRSTree()
        parallel.build(targets, hosts, np.arange(4000), parallelism=4)
        assert serial.num_leaves == parallel.num_leaves
        probe = KeyRange(200.0, 300.0)
        assert hermit_style_answer(serial, hosts, targets, probe) == \
            hermit_style_answer(parallel, hosts, targets, probe)

    def test_sampling_optimisation_still_correct(self):
        rng = np.random.default_rng(4)
        targets = rng.uniform(0.0, 1000.0, size=5000)
        hosts = np.sqrt(targets) * 100.0
        config = TRSTreeConfig(sample_fraction=0.05)
        tree = TRSTree(config)
        tree.build(targets, hosts, np.arange(5000))
        probe = KeyRange(100.0, 150.0)
        assert hermit_style_answer(tree, hosts, targets, probe) == \
            brute_force(targets, probe)


class TestLookup:
    def test_range_lookup_covers_all_matches(self):
        targets, hosts, tids = linear_data(noise_positions=range(0, 30))
        tree = TRSTree()
        tree.build(targets, hosts, tids)
        probe = KeyRange(250.0, 400.0)
        assert hermit_style_answer(tree, hosts, targets, probe) == \
            brute_force(targets, probe)

    def test_point_lookup(self):
        targets, hosts, tids = linear_data()
        tree = TRSTree()
        tree.build(targets, hosts, tids)
        value = float(targets[10])
        answer = hermit_style_answer(tree, hosts, targets, KeyRange(value, value))
        assert 10 in answer

    def test_lookup_outside_domain(self):
        targets, hosts, tids = linear_data()
        tree = TRSTree()
        tree.build(targets, hosts, tids)
        result = tree.lookup(KeyRange(5000.0, 6000.0))
        # The edge leaf is treated as open-ended (it would hold any
        # out-of-domain inserts), but no stored tuple matches.
        assert result.outlier_tids == []
        assert hermit_style_answer(tree, hosts, targets,
                                   KeyRange(5000.0, 6000.0)) == set()

    def test_host_ranges_are_disjoint(self):
        rng = np.random.default_rng(5)
        targets = rng.uniform(0.0, 1000.0, size=5000)
        hosts = np.sqrt(targets) * 100.0
        tree = TRSTree()
        tree.build(targets, hosts, np.arange(5000))
        result = tree.lookup(KeyRange(0.0, 1000.0))
        for first, second in zip(result.host_ranges, result.host_ranges[1:]):
            assert first.high < second.low

    def test_empty_tree_lookup(self):
        tree = TRSTree()
        result = tree.lookup(KeyRange(0, 1))
        assert result.host_ranges == []
        assert result.outlier_tids == []


class TestEmptyLeafProbes:
    """Leaves with nothing behind their band must not emit host probes."""

    def clustered_data(self, count=3000, seed=11):
        """Two tight clusters with a wide empty gap between them."""
        rng = np.random.default_rng(seed)
        low_cluster = rng.uniform(0.0, 100.0, size=count // 2)
        high_cluster = rng.uniform(900.0, 1000.0, size=count - count // 2)
        targets = np.concatenate([low_cluster, high_cluster])
        # Non-linear within each cluster so the tree actually splits and
        # builds leaves over the empty middle of the domain.
        hosts = np.sqrt(targets) * 100.0
        return targets, hosts, np.arange(len(targets))

    def test_empty_subrange_leaves_emit_no_host_ranges(self):
        targets, hosts, tids = self.clustered_data()
        tree = TRSTree()
        tree.build(targets, hosts, tids, value_range=KeyRange(0.0, 1000.0))
        empty_leaves = [leaf for leaf in tree.leaves() if leaf.num_covered == 0]
        assert empty_leaves, "expected leaves over the empty sub-ranges"
        # A probe entirely inside the empty gap returns nothing at all —
        # previously every overlapped empty leaf contributed a spurious
        # [alpha - eps, alpha + eps] host probe.
        result = tree.lookup(KeyRange(400.0, 500.0))
        assert result.host_ranges == []
        assert result.outlier_tids == []
        # Probes over the populated clusters still answer exactly.
        probe = KeyRange(50.0, 950.0)
        assert hermit_style_answer(tree, hosts, targets, probe) == \
            brute_force(targets, probe)

    def test_covered_insert_into_empty_leaf_restores_probe(self):
        """An insert the band covers makes the leaf's host range live again."""
        targets, hosts, tids = linear_data()
        tree = TRSTree()
        tree.build(targets, hosts, tids)
        leaf = tree.leaves()[0]
        before = leaf.num_model_covered
        tree.insert(500.0, 2.0 * 500.0 + 5.0, 424242)
        assert leaf.num_model_covered == before + 1
        assert tree.lookup(KeyRange(499.0, 501.0)).host_ranges


class TestRoutingParity:
    """Scalar and batched insertion must agree on every leaf assignment."""

    @settings(max_examples=200, deadline=None)
    @given(
        st.floats(min_value=-1e9, max_value=1e9, allow_nan=False),
        st.floats(min_value=1e-9, max_value=1e9, allow_nan=False),
        st.integers(min_value=2, max_value=16),
        st.integers(min_value=0, max_value=16),
        st.sampled_from([0.0, 1e-300, -1e-300]),
    )
    def test_scalar_matches_vectorized_on_boundaries(self, low, width, fanout,
                                                     boundary, jitter):
        """Adversarial values exactly on (and a hair off) child boundaries."""
        key_range = KeyRange(low, low + width)
        # Both ways a boundary can be computed: cumulative steps and the
        # direct fraction — under float rounding they can differ, which is
        # precisely where the old mask-based and arithmetic routings split.
        step = key_range.width / fanout
        candidates = [
            low + min(boundary, fanout) * step,
            low + key_range.width * min(boundary, fanout) / fanout,
        ]
        values = np.array([min(max(v + jitter, low), low + width)
                           for v in candidates])
        batched = route_indices(values, key_range, fanout)
        for value, routed in zip(values, batched):
            assert route_index(float(value), key_range, fanout) == routed

    @settings(max_examples=200, deadline=None)
    @given(
        st.floats(min_value=-1e9, max_value=1e9, allow_nan=False),
        st.floats(min_value=1e-9, max_value=1e9, allow_nan=False),
        st.integers(min_value=2, max_value=16),
        st.integers(min_value=1, max_value=15),
    )
    def test_routed_values_stay_inside_their_child_range(self, low, width,
                                                         fanout, boundary):
        """Containment: an in-range value must land in a child whose closed
        key range contains it, or the lookup's overlap descent loses it.

        Regression for the arithmetic routing rule, which could file a value
        one ulp below a computed bound into the child *above* it (found by
        review with low=-966.9447289429418, width≈813.27, fanout=6).
        """
        from repro.core.node import equal_width_subranges
        key_range = KeyRange(low, low + width)
        subranges = equal_width_subranges(key_range, fanout)
        bound = subranges[min(boundary, fanout - 1)].low
        probes = [bound, float(np.nextafter(bound, -np.inf)),
                  float(np.nextafter(bound, np.inf))]
        probes = [p for p in probes if key_range.low <= p <= key_range.high]
        for value in probes:
            child = int(route_index(value, key_range, fanout))
            assert subranges[child].contains(value)

    def test_review_repro_boundary_tuple_not_lost(self):
        """End-to-end repro from review: a tuple 1 ulp below a child bound
        must stay reachable by a point lookup."""
        from repro.core.node import equal_width_subranges
        key_range = KeyRange(-966.9447289429418, -153.67448955593954)
        subranges = equal_width_subranges(key_range, 6)
        value = float(np.nextafter(subranges[5].low, -np.inf))
        rng = np.random.default_rng(30)
        targets = rng.uniform(key_range.low, key_range.high, size=3000)
        hosts = np.sin(targets / 20.0) * 1000.0  # forces splits
        tree = TRSTree(TRSTreeConfig(node_fanout=6, max_height=3))
        tree.build(targets, hosts, np.arange(3000),
                   value_range=key_range)
        tree.insert(value, 1e6, 424242)  # gross outlier host
        result = tree.lookup(KeyRange(value, value))
        assert 424242 in result.outlier_tids

    def test_tree_files_boundary_tuples_identically(self):
        """insert vs insert_many: same leaf for values on split boundaries."""
        rng = np.random.default_rng(13)
        targets = rng.uniform(0.0, 1000.0, size=4000)
        hosts = np.sin(targets / 20.0) * 1000.0  # forces splits
        tids = np.arange(4000)

        def build():
            tree = TRSTree(TRSTreeConfig(node_fanout=4, max_height=4))
            tree.build(targets, hosts, tids)
            return tree

        scalar_tree, batched_tree = build(), build()
        # Values sitting exactly on every internal boundary of the built
        # tree, inserted as guaranteed outliers (host far off any band).
        boundaries = sorted({leaf.key_range.low for leaf in scalar_tree.leaves()}
                            | {leaf.key_range.high for leaf in scalar_tree.leaves()})
        new_targets = np.array(boundaries)
        new_hosts = np.full(len(boundaries), 1e9)
        new_tids = np.arange(10_000, 10_000 + len(boundaries))
        for value, host, tid in zip(new_targets, new_hosts, new_tids):
            scalar_tree.insert(float(value), float(host), int(tid))
        batched_tree.insert_many(new_targets, new_hosts, new_tids)

        def placement(tree):
            return {
                tid: (leaf.key_range.low, leaf.key_range.high)
                for leaf in tree.leaves()
                for _, tid in leaf.outliers.items()
            }

        scalar_placement = placement(scalar_tree)
        batched_placement = placement(batched_tree)
        for tid in new_tids:
            assert scalar_placement[int(tid)] == batched_placement[int(tid)]


class TestMaintenance:
    def test_insert_covered_tuple_leaves_no_trace(self):
        targets, hosts, tids = linear_data()
        tree = TRSTree()
        tree.build(targets, hosts, tids)
        tree.insert(500.0, 2.0 * 500.0 + 5.0, 99999)
        assert tree.num_outliers == 0

    def test_insert_outlier_is_recoverable(self):
        targets, hosts, tids = linear_data()
        tree = TRSTree()
        tree.build(targets, hosts, tids)
        tree.insert(500.0, 99999.0, 77777)
        result = tree.lookup(KeyRange(499.0, 501.0))
        assert 77777 in result.outlier_tids

    def test_delete_removes_outlier(self):
        targets, hosts, tids = linear_data()
        tree = TRSTree()
        tree.build(targets, hosts, tids)
        tree.insert(500.0, 99999.0, 77777)
        tree.delete(500.0, 99999.0, 77777)
        result = tree.lookup(KeyRange(499.0, 501.0))
        assert 77777 not in result.outlier_tids

    def test_update_moves_outlier(self):
        targets, hosts, tids = linear_data()
        tree = TRSTree()
        tree.build(targets, hosts, tids)
        tree.insert(500.0, 99999.0, 77777)
        tree.update(500.0, 99999.0, 700.0, 88888.0, 77777)
        assert 77777 not in tree.lookup(KeyRange(499.0, 501.0)).outlier_tids
        assert 77777 in tree.lookup(KeyRange(699.0, 701.0)).outlier_tids

    def test_maintenance_on_empty_tree_is_noop(self):
        tree = TRSTree()
        tree.insert(1.0, 1.0, 1)
        tree.delete(1.0, 1.0, 1)

    def test_heavy_inserts_flag_split_candidates(self):
        targets, hosts, tids = linear_data(count=3000)
        tree = TRSTree()
        tree.build(targets, hosts, tids)
        rng = np.random.default_rng(6)
        for i in range(600):
            tree.insert(float(rng.uniform(0, 1000)), float(rng.uniform(0, 1e6)),
                        100000 + i)
        assert tree.pending_reorganizations > 0


class TestHonestCounters:
    """num_deleted must track real removals, not no-op delete/update churn."""

    def build_tree(self, count=2000):
        targets, hosts, tids = linear_data(count=count)
        tree = TRSTree()
        tree.build(targets, hosts, tids)
        return tree, targets, hosts

    def test_noop_delete_does_not_count(self):
        tree, _, _ = self.build_tree()
        leaf = tree.leaves()[0]
        # Neither an outlier entry nor inside the band: the pair was never
        # in the tree, so the delete must leave the counters alone.
        for _ in range(50):
            tree.delete(500.0, 1e9, 999_999)
        assert leaf.num_deleted == 0
        assert leaf.deleted_ratio() == 0.0

    def test_covered_delete_counts_once(self):
        tree, targets, hosts = self.build_tree()
        leaf = tree.leaves()[0]
        tree.delete(float(targets[0]), float(hosts[0]), 0)
        assert leaf.num_deleted == 1

    def test_outlier_delete_counts_via_removal(self):
        tree, _, _ = self.build_tree()
        leaf = tree.leaves()[0]
        tree.insert(500.0, 1e9, 777)
        assert len(leaf.outliers) == 1
        tree.delete(500.0, 1e9, 777)
        assert len(leaf.outliers) == 0
        assert leaf.num_deleted == 1

    def test_update_within_leaf_does_not_inflate_counters(self):
        """An in-place move is not a delete plus an insert."""
        tree, targets, hosts = self.build_tree()
        leaf = tree.leaves()[0]
        value = float(targets[10])
        host = float(hosts[10])
        # 300 covered-pair updates within the single leaf: population is
        # unchanged throughout, so no churn may accumulate.
        for step in range(300):
            new_value = 100.0 + (step % 7)
            new_host = 2.0 * new_value + 5.0
            tree.update(value, host, new_value, new_host, 10)
            value, host = new_value, new_host
        assert leaf.num_deleted == 0
        assert leaf.num_inserted == 0
        assert leaf.deleted_ratio() == 0.0
        assert tree.pending_reorganizations == 0

    def test_over_deleting_one_covered_pair_cannot_silence_the_probe(self):
        """Regression (review repro): num_model_covered is a monotone upper
        bound — repeated deletes of one covered pair must not drive it to
        zero and drop the host range while covered tuples still exist."""
        tree, targets, hosts = self.build_tree(count=500)
        leaf = tree.leaves()[0]
        for _ in range(505):
            tree.delete(float(targets[0]), float(hosts[0]), 0)
        assert leaf.num_model_covered > 0
        probe = KeyRange(0.0, 1000.0)
        result = tree.lookup(probe)
        assert result.host_ranges  # the 499 remaining tuples stay reachable

    def test_update_across_leaves_counts_both_sides(self):
        rng = np.random.default_rng(21)
        targets = rng.uniform(0.0, 1000.0, size=4000)
        hosts = np.sin(targets / 20.0) * 1000.0
        tree = TRSTree(TRSTreeConfig(node_fanout=4, max_height=3))
        tree.build(targets, hosts, np.arange(4000))
        assert tree.num_leaves > 1
        old_leaf = tree._traverse(float(targets[0]))
        # Move the tuple to a target owned by a different leaf.
        new_target = float(targets[0]) + 500.0 if targets[0] < 400.0 \
            else float(targets[0]) - 500.0
        new_leaf = tree._traverse(new_target)
        assert new_leaf is not old_leaf
        deleted_before = old_leaf.num_deleted
        inserted_before = new_leaf.num_inserted
        tree.update(float(targets[0]), float(hosts[0]), new_target, 12345.0, 0)
        assert old_leaf.num_deleted == deleted_before + 1
        assert new_leaf.num_inserted == inserted_before + 1

    def test_noop_updates_do_not_flag_spurious_merges(self):
        """Repeated no-op updates used to inflate deleted_ratio past the
        merge threshold even though no tuple ever left the leaf."""
        rng = np.random.default_rng(22)
        targets = rng.uniform(0.0, 1000.0, size=4000)
        hosts = np.sin(targets / 20.0) * 1000.0
        tree = TRSTree(TRSTreeConfig(node_fanout=4, max_height=3))
        tree.build(targets, hosts, np.arange(4000))
        assert tree.num_leaves > 1  # leaves have parents, merges possible
        leaf = next(l for l in tree.leaves() if l.num_model_covered > 0)
        value = (leaf.key_range.low + leaf.key_range.high) / 2.0
        covered_host = leaf.model.predict(value)
        # Old pair never present (no outlier entry, far outside any band);
        # new pair covered.  Run far past the merge threshold
        # (outlier_ratio * num_covered): nothing may be counted as deleted
        # and no merge may be flagged.
        for _ in range(leaf.num_covered + 10):
            tree.update(value, 1e9, value, covered_host, 888_888)
        assert leaf.num_deleted == 0
        assert leaf.deleted_ratio() == 0.0
        assert tree.pending_reorganizations == 0


class TestReorganization:
    def build_with_provider(self):
        targets, hosts, tids = linear_data(count=3000)
        store = {
            "targets": targets.copy(), "hosts": hosts.copy(), "tids": tids.copy(),
        }
        tree = TRSTree()
        tree.build(store["targets"], store["hosts"], store["tids"])

        def provider(key_range: KeyRange):
            mask = (store["targets"] >= key_range.low) & (
                store["targets"] <= key_range.high)
            return (store["targets"][mask], store["hosts"][mask],
                    store["tids"][mask])

        return tree, store, provider

    def test_reorganize_absorbs_new_outliers(self):
        tree, store, provider = self.build_with_provider()
        rng = np.random.default_rng(7)
        new_targets = rng.uniform(0.0, 1000.0, size=800)
        new_hosts = rng.uniform(0.0, 1e6, size=800)
        # Tids double as positions into the concatenated arrays below so the
        # brute-force oracle can validate them.
        new_tids = np.arange(3000, 3800)
        for m, n, tid in zip(new_targets, new_hosts, new_tids):
            tree.insert(float(m), float(n), int(tid))
        store["targets"] = np.concatenate([store["targets"], new_targets])
        store["hosts"] = np.concatenate([store["hosts"], new_hosts])
        store["tids"] = np.concatenate([store["tids"], new_tids])

        assert tree.pending_reorganizations > 0
        processed = tree.reorganize(provider)
        assert processed > 0
        assert tree.pending_reorganizations == 0
        # After the rebuild the tree either split (more leaves) or re-fit; the
        # query answers must still be exact and every stored outlier must be a
        # live tuple.
        probe = KeyRange(100.0, 300.0)
        answer = hermit_style_answer(tree, store["hosts"], store["targets"], probe)
        assert answer == brute_force(store["targets"], probe)
        assert tree.num_leaves >= 1
        assert tree.num_outliers <= len(store["targets"])

    def test_reorganize_respects_max_candidates(self):
        tree, store, provider = self.build_with_provider()
        rng = np.random.default_rng(8)
        for i in range(800):
            tree.insert(float(rng.uniform(0, 1000)), float(rng.uniform(0, 1e6)),
                        50_000 + i)
        pending = tree.pending_reorganizations
        if pending > 1:
            processed = tree.reorganize(provider, max_candidates=1)
            assert processed == 1

    def test_reorganize_children_rebuilds_subtrees(self):
        rng = np.random.default_rng(9)
        targets = rng.uniform(0.0, 1000.0, size=4000)
        hosts = np.sqrt(targets) * 100.0
        tids = np.arange(4000)
        tree = TRSTree()
        tree.build(targets, hosts, tids)

        def provider(key_range: KeyRange):
            mask = (targets >= key_range.low) & (targets <= key_range.high)
            return targets[mask], hosts[mask], tids[mask]

        tree.reorganize_children(provider, [0, 1])
        probe = KeyRange(0.0, 400.0)
        assert hermit_style_answer(tree, hosts, targets, probe) == \
            brute_force(targets, probe)

    def test_memory_accounting_walks_all_nodes(self):
        tree, _, _ = self.build_with_provider()
        single_leaf_bytes = tree.memory_bytes()
        assert single_leaf_bytes > 0
        assert tree.num_nodes == tree.num_leaves
