"""Unit tests for table schemas and column statistics."""

import numpy as np
import pytest

from repro.errors import SchemaError
from repro.storage.schema import (
    Column,
    ColumnStatistics,
    DataType,
    TableSchema,
    numeric_schema,
)


class TestColumn:
    def test_defaults_to_float(self):
        column = Column("price")
        assert column.dtype is DataType.FLOAT64
        assert not column.nullable

    def test_rejects_empty_name(self):
        with pytest.raises(SchemaError):
            Column("")

    def test_byte_widths(self):
        assert DataType.FLOAT64.byte_width == 8
        assert DataType.INT64.byte_width == 8
        assert DataType.STRING.byte_width == 16

    def test_numpy_dtypes(self):
        assert DataType.FLOAT64.numpy_dtype == np.dtype(np.float64)
        assert DataType.INT64.numpy_dtype == np.dtype(np.int64)
        assert DataType.STRING.numpy_dtype == np.dtype(object)


class TestTableSchema:
    def test_position_lookup(self):
        schema = numeric_schema("t", ["a", "b", "c"], primary_key="a")
        assert schema.position_of("b") == 1
        assert schema.column("c").name == "c"
        assert "b" in schema
        assert "z" not in schema

    def test_rejects_duplicate_columns(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [Column("a"), Column("a")], primary_key="a")

    def test_rejects_unknown_primary_key(self):
        with pytest.raises(SchemaError):
            numeric_schema("t", ["a", "b"], primary_key="z")

    def test_rejects_empty_schema(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [], primary_key="a")

    def test_unknown_column_raises(self):
        schema = numeric_schema("t", ["a", "b"], primary_key="a")
        with pytest.raises(SchemaError):
            schema.position_of("missing")

    def test_validate_row_requires_non_nullable(self):
        schema = TableSchema(
            "t", [Column("a"), Column("b", nullable=True)], primary_key="a"
        )
        schema.validate_row({"a": 1.0})
        with pytest.raises(SchemaError):
            schema.validate_row({"b": 2.0})
        with pytest.raises(SchemaError):
            schema.validate_row({"a": 1.0, "zzz": 2.0})

    def test_row_byte_width(self):
        schema = numeric_schema("t", ["a", "b", "c"], primary_key="a")
        assert schema.row_byte_width() == 24

    def test_iteration_order(self):
        schema = numeric_schema("t", ["a", "b", "c"], primary_key="a")
        assert schema.column_names == ["a", "b", "c"]
        assert len(schema) == 3
        assert [c.name for c in schema] == ["a", "b", "c"]


class TestColumnStatistics:
    def test_observe_single_values(self):
        stats = ColumnStatistics()
        stats.observe(5.0)
        stats.observe(-3.0)
        stats.observe(10.0)
        assert stats.count == 3
        assert stats.value_range == (-3.0, 10.0)

    def test_observe_many(self):
        stats = ColumnStatistics()
        stats.observe_many(np.array([1.0, 2.0, 3.0]))
        stats.observe_many(np.array([]))
        assert stats.count == 3
        assert stats.value_range == (1.0, 3.0)

    def test_empty_range_raises(self):
        with pytest.raises(SchemaError):
            ColumnStatistics().value_range
