"""WAL codec and torn-tail tests.

Two layers of guarantees:

* **Codec round-trip** (hypothesis): any column batch — int64/float64/string
  columns, unicode, nulls, empty batches — and any JSON payload survives
  ``encode_record`` → ``scan_wal`` bit-exactly.
* **Torn-write corpus**: a valid WAL truncated at *every* byte offset still
  scans without raising and always yields a prefix of the original records —
  the contract recovery relies on.
"""

from __future__ import annotations

import os
import tempfile
import zlib

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.durability.config import FsyncPolicy
from repro.durability.wal import (
    WalOp,
    WriteAheadLog,
    encode_columns,
    encode_record,
    scan_wal,
)
from repro.errors import DurabilityError

SETTINGS = settings(max_examples=25, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])

finite_floats = st.floats(allow_nan=False, allow_infinity=False, width=64)
int64s = st.integers(min_value=-(2 ** 63), max_value=2 ** 63 - 1)
strings = st.one_of(st.none(), st.text(max_size=40))


@st.composite
def column_batches(draw):
    """A column-oriented batch with equal-length mixed-dtype columns."""
    count = draw(st.integers(min_value=0, max_value=30))
    n_int = draw(st.integers(min_value=0, max_value=2))
    n_float = draw(st.integers(min_value=0, max_value=2))
    n_str = draw(st.integers(min_value=0, max_value=2))
    columns = {}
    for i in range(n_int):
        columns[f"i{i}"] = np.asarray(
            draw(st.lists(int64s, min_size=count, max_size=count)),
            dtype=np.int64,
        )
    for i in range(n_float):
        columns[f"f{i}"] = np.asarray(
            draw(st.lists(finite_floats, min_size=count, max_size=count)),
            dtype=np.float64,
        )
    for i in range(n_str):
        columns[f"s{i}"] = draw(
            st.lists(strings, min_size=count, max_size=count)
        )
    return columns


def record_bytes(record) -> bytes:
    """Canonical on-disk form — array-safe record equality for the tests."""
    return encode_record(record.lsn, record.op, record.payload)


def roundtrip(op, payload):
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "wal.log")
        with open(path, "wb") as handle:
            handle.write(encode_record(1, op, payload))
        records, valid = scan_wal(path)
        assert valid == os.path.getsize(path)
    assert len(records) == 1
    assert records[0].lsn == 1 and records[0].op is op
    return records[0].payload


@SETTINGS
@given(batch=column_batches())
def test_insert_many_roundtrip(batch):
    decoded = roundtrip(WalOp.INSERT_MANY,
                        {"table": "t", "columns": batch})
    assert decoded["table"] == "t"
    assert set(decoded["columns"]) == set(batch)
    for name, values in batch.items():
        got = decoded["columns"][name]
        if isinstance(values, np.ndarray):
            assert np.asarray(got).dtype == values.dtype
            np.testing.assert_array_equal(np.asarray(got), values)
        else:
            assert list(got) == list(values)


@SETTINGS
@given(changes=st.dictionaries(
    st.text(min_size=1, max_size=10),
    st.one_of(st.none(), int64s, finite_floats, st.text(max_size=20)),
    max_size=5,
), location=st.integers(min_value=0, max_value=2 ** 40))
def test_update_payload_roundtrip(changes, location):
    decoded = roundtrip(WalOp.UPDATE, {
        "table": "t", "location": location, "changes": changes,
    })
    assert decoded == {"table": "t", "location": location, "changes": changes}


def test_nan_and_infinity_survive():
    decoded = roundtrip(WalOp.UPDATE, {
        "table": "t", "location": 0,
        "changes": {"a": float("inf"), "b": float("-inf")},
    })
    assert decoded["changes"]["a"] == float("inf")
    assert decoded["changes"]["b"] == float("-inf")
    batch = {"f": np.asarray([np.nan, np.inf, -np.inf, 0.0])}
    decoded = roundtrip(WalOp.INSERT_MANY,
                        {"table": "t", "columns": batch})
    np.testing.assert_array_equal(np.asarray(decoded["columns"]["f"]),
                                  batch["f"])


def test_unencodable_columns_rejected():
    with pytest.raises(DurabilityError):
        encode_columns({"bad": [object()]})
    with pytest.raises(DurabilityError):
        encode_columns({"a": [1, 2], "b": [1]})
    with pytest.raises(DurabilityError):
        encode_columns({"two_d": np.zeros((2, 2))})


def build_sample_wal(path: str) -> list:
    """A small WAL exercising every opcode; returns its records."""
    wal = WriteAheadLog(path, fsync=FsyncPolicy.OFF)
    wal.append(WalOp.CREATE_TABLE, {"schema": {
        "name": "t", "primary_key": "pk",
        "columns": [{"name": "pk", "dtype": "int64", "nullable": False}],
    }})
    wal.append(WalOp.INSERT_MANY, {"table": "t", "columns": {
        "pk": np.arange(7, dtype=np.int64),
        "v": np.linspace(0.0, 1.0, 7),
        "s": ["α", None, "b", "c", "d", "e", "f"],
    }})
    wal.append(WalOp.CREATE_INDEX, {"name": "i", "table": "t", "column": "v",
                                    "method": "btree", "host_column": None,
                                    "trs_config": None,
                                    "cm_target_bucket_width": None,
                                    "cm_host_bucket_width": None,
                                    "preexisting": False})
    wal.append(WalOp.UPDATE, {"table": "t", "location": 2,
                              "changes": {"v": 0.25}})
    wal.append(WalOp.DELETE, {"table": "t", "location": 3})
    wal.append(WalOp.DROP_INDEX, {"table": "t", "name": "i"})
    wal.close()
    records, valid = scan_wal(path)
    assert valid == os.path.getsize(path)
    return records


def test_torn_write_corpus_every_byte_offset(tmp_path):
    """Truncating a valid WAL anywhere yields a clean prefix, never a crash."""
    path = os.path.join(str(tmp_path), "wal.log")
    records = build_sample_wal(path)
    blob = open(path, "rb").read()
    torn = os.path.join(str(tmp_path), "torn.log")
    boundaries = set()
    for cut in range(len(blob) + 1):
        with open(torn, "wb") as handle:
            handle.write(blob[:cut])
        got, valid = scan_wal(torn)
        assert valid <= cut
        # always a prefix, bit-identical
        assert [record_bytes(r) for r in got] == \
            [record_bytes(r) for r in records[:len(got)]]
        boundaries.add(len(got))
    # every prefix length is reachable, so each record boundary was exercised
    assert boundaries == set(range(len(records) + 1))


def test_garbled_tail_is_ignored_and_truncated(tmp_path):
    path = os.path.join(str(tmp_path), "wal.log")
    records = build_sample_wal(path)
    blob = bytearray(open(path, "rb").read())
    blob[-3] ^= 0xFF  # corrupt the last record's body
    with open(path, "wb") as handle:
        handle.write(blob)
    got, valid = scan_wal(path)
    assert [record_bytes(r) for r in got] == \
        [record_bytes(r) for r in records[:-1]]
    # reopening the appender truncates the torn tail physically
    wal = WriteAheadLog(path, fsync=FsyncPolicy.OFF)
    wal.close()
    assert os.path.getsize(path) == valid
    again, _ = scan_wal(path)
    assert [record_bytes(r) for r in again] == \
        [record_bytes(r) for r in records[:-1]]


def test_append_continues_lsn_sequence_after_reopen(tmp_path):
    path = os.path.join(str(tmp_path), "wal.log")
    records = build_sample_wal(path)
    wal = WriteAheadLog(path, fsync=FsyncPolicy.OFF)
    assert wal.last_lsn == records[-1].lsn
    lsn = wal.append(WalOp.DELETE, {"table": "t", "location": 0})
    wal.close()
    assert lsn == records[-1].lsn + 1
    got, _ = scan_wal(path)
    assert [r.lsn for r in got] == list(range(1, lsn + 1))


def test_midlog_corruption_stops_scan_at_prefix(tmp_path):
    """A bad record mid-log hides everything after it (monotonic prefix)."""
    path = os.path.join(str(tmp_path), "wal.log")
    records = build_sample_wal(path)
    blob = bytearray(open(path, "rb").read())
    # flip a byte inside the *second* record's body
    first_len = int.from_bytes(blob[0:4], "little")
    offset = (8 + first_len) + 8 + 2
    blob[offset] ^= 0x01
    with open(path, "wb") as handle:
        handle.write(blob)
    got, valid = scan_wal(path)
    assert [record_bytes(r) for r in got] == [record_bytes(records[0])]
    assert valid == 8 + first_len


def test_crc_catches_single_bit_flip_anywhere_in_record(tmp_path):
    path = os.path.join(str(tmp_path), "wal.log")
    with open(path, "wb") as handle:
        handle.write(encode_record(1, WalOp.DELETE,
                                   {"table": "t", "location": 9}))
    blob = bytearray(open(path, "rb").read())
    body = bytes(blob[8:])
    assert zlib.crc32(body) == int.from_bytes(blob[4:8], "little")
    for position in range(8, len(blob)):
        flipped = bytearray(blob)
        flipped[position] ^= 0x10
        with open(path, "wb") as handle:
            handle.write(flipped)
        got, _ = scan_wal(path)
        assert got == []
