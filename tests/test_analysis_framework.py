"""The analysis framework: suppressions, hygiene, CLI, self-check."""

from __future__ import annotations

import subprocess
import sys
import textwrap
from pathlib import Path

from repro.analysis import Module, analyze_modules, analyze_paths
from repro.analysis.framework import (
    HYGIENE_RULE_ID,
    Finding,
    Rule,
    all_rules,
    iter_python_files,
    load_modules,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


class FlagEveryFor(Rule):
    """Test rule: one finding per ``for`` statement."""

    rule_id = "REP999"
    name = "flag-every-for"
    description = "test rule"

    def check_module(self, module):
        import ast

        for node in ast.walk(module.tree):
            if isinstance(node, ast.For):
                yield Finding(rule=self.rule_id, message="a for",
                              path=module.path, line=node.lineno)


def module_of(source: str, path: str = "fixture.py") -> Module:
    return Module.from_source(textwrap.dedent(source), path)


class TestSuppressions:
    def test_unsuppressed_finding_survives(self):
        module = module_of("""
            for x in range(3):
                pass
        """)
        findings = analyze_modules([module], rules=[FlagEveryFor()])
        assert [f.rule for f in findings] == ["REP999"]

    def test_inline_suppression_with_rationale(self):
        module = module_of("""
            for x in range(3):  # repro: ignore[REP999] -- fixture reason
                pass
        """)
        assert analyze_modules([module], rules=[FlagEveryFor()]) == []

    def test_standalone_suppression_above(self):
        module = module_of("""
            # repro: ignore[REP999] -- fixture reason
            for x in range(3):
                pass
        """)
        assert analyze_modules([module], rules=[FlagEveryFor()]) == []

    def test_multiline_rationale_block(self):
        module = module_of("""
            # repro: ignore[REP999] -- the rationale starts here and
            # wraps onto a continuation comment line
            for x in range(3):
                pass
        """)
        assert analyze_modules([module], rules=[FlagEveryFor()]) == []

    def test_suppression_without_rationale_suppresses_nothing(self):
        module = module_of("""
            for x in range(3):  # repro: ignore[REP999]
                pass
        """)
        findings = analyze_modules([module], rules=[FlagEveryFor()])
        rules = sorted(f.rule for f in findings)
        assert rules == [HYGIENE_RULE_ID, "REP999"]

    def test_unused_suppression_is_reported(self):
        module = module_of("""
            x = 1  # repro: ignore[REP999] -- nothing fires here
        """)
        findings = analyze_modules([module], rules=[FlagEveryFor()])
        assert [f.rule for f in findings] == [HYGIENE_RULE_ID]
        assert "unused" in findings[0].message

    def test_unknown_rule_id_is_reported(self):
        module = module_of("""
            x = 1  # repro: ignore[REP777] -- no such rule
        """)
        findings = analyze_modules([module], rules=[FlagEveryFor()])
        assert [f.rule for f in findings] == [HYGIENE_RULE_ID]
        assert "unknown rule" in findings[0].message

    def test_wrong_rule_id_does_not_suppress(self):
        module = module_of("""
            # repro: ignore[REP001] -- wrong rule for this finding
            for x in range(3):
                pass
        """)
        findings = analyze_modules([module], rules=[FlagEveryFor()])
        assert "REP999" in {f.rule for f in findings}

    def test_suppression_in_string_literal_is_ignored(self):
        # Comment-looking text inside a string must not register: the
        # rule fixtures in this very test suite depend on it.
        module = module_of('''
            SNIPPET = """
            x = 1  # repro: ignore[REP999] -- not a real comment
            """
        ''')
        assert analyze_modules([module], rules=[FlagEveryFor()]) == []

    def test_hygiene_findings_not_suppressible(self):
        module = module_of("""
            # repro: ignore[REP000] -- trying to silence the police
            x = 1  # repro: ignore[REP999]
        """)
        findings = analyze_modules([module], rules=[FlagEveryFor()])
        assert HYGIENE_RULE_ID in {f.rule for f in findings}


class TestLoading:
    def test_syntax_error_becomes_finding(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        modules, errors = load_modules([bad])
        assert modules == []
        assert [f.rule for f in errors] == [HYGIENE_RULE_ID]

    def test_iter_python_files_expands_directories(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "a.py").write_text("x = 1\n")
        (tmp_path / "b.py").write_text("y = 2\n")
        (tmp_path / "c.txt").write_text("not python\n")
        files = iter_python_files([tmp_path])
        assert {f.name for f in files} == {"a.py", "b.py"}
        assert files == sorted(files)

    def test_marker_extraction(self):
        module = module_of("""
            # repro: hot-module
            x = 1
        """)
        assert "hot-module" in module.markers


class TestRegistry:
    def test_all_rules_registered(self):
        ids = {rule.rule_id for rule in all_rules()}
        assert {"REP001", "REP002", "REP003", "REP004", "REP005",
                "REP006"} <= ids

    def test_finding_render_format(self):
        finding = Finding(rule="REP001", message="boom", path="a/b.py",
                          line=7)
        assert finding.render() == "a/b.py:7: REP001 boom"


class TestCli:
    def _run(self, *args: str, cwd: Path | None = None):
        return subprocess.run(
            [sys.executable, "-m", "repro.analysis", *args],
            capture_output=True, text=True, cwd=cwd or REPO_ROOT,
        )

    def test_list_rules(self):
        result = self._run("--list-rules")
        assert result.returncode == 0
        assert "REP001" in result.stdout and "REP006" in result.stdout

    def test_clean_file_exits_zero(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        result = self._run(str(clean))
        assert result.returncode == 0, result.stdout + result.stderr
        assert result.stdout == ""

    def test_findings_exit_one_with_locations(self, tmp_path):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("try:\n    pass\nexcept Exception:\n    pass\n")
        result = self._run(str(dirty))
        assert result.returncode == 1
        assert "REP006" in result.stdout
        assert ":3:" in result.stdout

    def test_missing_path_exits_two(self):
        result = self._run("definitely/not/a/path.py")
        assert result.returncode == 2

    def test_select_unknown_rule_exits_two(self):
        result = self._run("--select", "REP123", "src")
        assert result.returncode == 2


class TestShippedTreeIsClean:
    def test_src_tests_benchmarks_clean(self):
        """The acceptance criterion: the shipped tree has zero findings."""
        paths = [REPO_ROOT / name for name in ("src", "tests", "benchmarks")]
        findings = analyze_paths(paths, root=REPO_ROOT)
        assert findings == [], "\n".join(f.render() for f in findings)
