"""Batched query API: ``query_many`` / ``query_conjunctive_many``.

The invariant pinned here is result-set equality: for any mechanism, either
pointer scheme and any batch shape — empty-result predicates, duplicates,
unsatisfiable conjunctions, batches spanning several plan groups — the
batched entry points must return exactly what the per-query loop returns,
in input order.  A second set of tests covers the plan-cache observability
the batch path is supposed to demonstrate (hit/miss/replay counters, group
sizes, ``explain`` surfacing).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine.catalog import IndexMethod
from repro.engine.database import Database
from repro.engine.query import ConjunctiveQuery, RangePredicate
from repro.storage.identifiers import PointerScheme
from repro.storage.schema import numeric_schema

SETTINGS = settings(max_examples=15, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])

ROWS = 2_500
TARGET_DOMAIN = (0.0, 1_000.0)
METHODS = ("hermit", "btree", "sorted", "cm")
SCHEMES = (PointerScheme.PHYSICAL, PointerScheme.LOGICAL)


@lru_cache(maxsize=None)
def build_database(scheme: PointerScheme, method: str) -> Database:
    """One table (pk, host, target, payload) with a single target index.

    Cached per (scheme, method): the tests only read, so every hypothesis
    example can share one built database.
    """
    rng = np.random.default_rng(11)
    low, high = TARGET_DOMAIN
    target = rng.uniform(low, high, size=ROWS)
    host = 2.0 * target + 10.0
    noisy = rng.random(ROWS) < 0.02
    host[noisy] = rng.uniform(host.min(), host.max(), size=int(noisy.sum()))

    database = Database(pointer_scheme=scheme)
    database.create_table(numeric_schema(
        "t", ["pk", "host", "target", "payload"], primary_key="pk"))
    database.insert_many("t", {
        "pk": np.arange(ROWS, dtype=np.float64),
        "host": host,
        "target": target,
        "payload": rng.uniform(0.0, 1.0, size=ROWS),
    })
    database.create_index("idx_host", "t", "host", method=IndexMethod.BTREE)
    if method == "hermit":
        database.create_index("idx_target", "t", "target",
                              method=IndexMethod.HERMIT, host_column="host")
    elif method == "btree":
        database.create_index("idx_target", "t", "target",
                              method=IndexMethod.BTREE)
    elif method == "sorted":
        database.create_index("idx_target", "t", "target",
                              method=IndexMethod.SORTED_COLUMN)
    elif method == "cm":
        database.create_index("idx_target", "t", "target",
                              method=IndexMethod.CORRELATION_MAP,
                              host_column="host",
                              cm_target_bucket_width=25.0,
                              cm_host_bucket_width=50.0)
    else:
        raise AssertionError(method)
    return database


def bound_pairs(count_min: int = 0, count_max: int = 12):
    """Batches of (low, high) bounds, including out-of-domain empties."""
    low, high = TARGET_DOMAIN
    bound = st.floats(min_value=low - 200.0, max_value=high + 200.0,
                      allow_nan=False, width=64)
    return st.lists(st.tuples(bound, bound), min_size=count_min,
                    max_size=count_max)


def as_predicates(pairs) -> list[RangePredicate]:
    return [RangePredicate("target", min(a, b), max(a, b))
            for a, b in pairs]


@pytest.mark.parametrize("scheme", SCHEMES, ids=lambda s: s.value)
@pytest.mark.parametrize("method", METHODS)
class TestQueryManyEqualsLoop:
    @SETTINGS
    @given(pairs=bound_pairs())
    def test_range_batches(self, scheme, method, pairs):
        database = build_database(scheme, method)
        predicates = as_predicates(pairs)
        batched = database.query_many("t", predicates)
        assert len(batched) == len(predicates)
        for result, predicate in zip(batched, predicates):
            loop = database.query("t", predicate)
            assert result.locations == loop.locations

    @SETTINGS
    @given(pairs=bound_pairs(count_min=1, count_max=6),
           point_count=st.integers(min_value=1, max_value=6))
    def test_mixed_point_and_range_batches_span_plan_groups(
            self, scheme, method, pairs, point_count):
        """Point probes and ranges in one batch land in different groups."""
        database = build_database(scheme, method)
        stored = database.table("t").column_array("target")
        predicates = as_predicates(pairs)
        predicates.extend(
            RangePredicate("target", float(v), float(v))
            for v in stored[:point_count]
        )
        # Duplicates of the first predicate exercise same-group replays.
        predicates.append(predicates[0])
        batched = database.query_many("t", predicates)
        for result, predicate in zip(batched, predicates):
            assert result.locations == database.query("t", predicate).locations

    @SETTINGS
    @given(pairs=bound_pairs(count_min=1, count_max=5))
    def test_conjunctive_batches(self, scheme, method, pairs):
        """Two-column conjunctions, including an unsatisfiable one."""
        database = build_database(scheme, method)
        queries: list = []
        for low, high in pairs:
            target = RangePredicate("target", min(low, high), max(low, high))
            host = RangePredicate("host", 2.0 * target.low + 10.0,
                                  2.0 * target.high + 110.0)
            queries.append(ConjunctiveQuery([target, host]))
        queries.append(ConjunctiveQuery([
            RangePredicate("target", 10.0, 20.0),
            RangePredicate("target", 30.0, 40.0),  # unsatisfiable
        ]))
        batched = database.query_conjunctive_many("t", queries)
        for result, query in zip(batched, queries):
            loop = database.query_conjunctive("t", query)
            assert np.array_equal(result.locations, loop.locations)
            assert result.group_size >= 1
        assert batched[-1].locations.size == 0
        assert batched[-1].plan.unsatisfiable


class TestBatchSemantics:
    @pytest.mark.parametrize("scheme", SCHEMES, ids=lambda s: s.value)
    def test_composite_path_batches(self, scheme):
        """CompositePath.execute_many equals the per-query composite plan."""
        rng = np.random.default_rng(5)
        rows = 600
        database = Database(pointer_scheme=scheme)
        database.create_table(numeric_schema(
            "c", ["pk", "a", "m", "payload"], primary_key="pk"))
        database.insert_many("c", {
            "pk": np.arange(rows, dtype=np.float64),
            "a": rng.uniform(0.0, 100.0, size=rows),
            "m": rng.uniform(0.0, 100.0, size=rows),
            "payload": rng.uniform(size=rows),
        })
        database.create_composite_index("idx_am", "c", "a", "m")
        queries = [
            ConjunctiveQuery([RangePredicate("a", low, low + 20.0),
                              RangePredicate("m", low + 10.0, low + 40.0)])
            for low in (0.0, 25.0, 50.0, 75.0)
        ]
        batched = database.query_conjunctive_many("c", queries)
        assert batched[0].plan.used_index == "idx_am"
        for result, query in zip(batched, queries):
            loop = database.query_conjunctive("c", query)
            assert np.array_equal(result.locations, loop.locations)

    def test_empty_batch(self):
        database = build_database(PointerScheme.PHYSICAL, "btree")
        assert database.query_many("t", []) == []
        assert database.query_conjunctive_many("t", []) == []

    def test_batch_sees_deletes(self):
        """Validation drops rows deleted after the index was built."""
        database = build_database(PointerScheme.PHYSICAL, "sorted")
        predicate = RangePredicate("target", *TARGET_DOMAIN)
        before = database.query_many("t", [predicate])[0]
        victim = before.locations[0]
        database.delete("t", victim)
        try:
            after = database.query_many("t", [predicate])[0]
            assert victim not in after.locations
            assert after.locations == database.query("t", predicate).locations
        finally:
            # The shared cached database was mutated; rebuild on next use.
            build_database.cache_clear()

    def test_results_are_sorted_unique(self):
        database = build_database(PointerScheme.LOGICAL, "hermit")
        predicate = RangePredicate("target", 100.0, 400.0)
        result = database.query_conjunctive_many("t", [predicate])[0]
        locations = result.locations
        assert locations.dtype == np.int64
        assert np.array_equal(locations, np.unique(locations))


class TestPlanCacheObservability:
    def test_group_sizes_and_counters(self):
        database = build_database(PointerScheme.PHYSICAL, "btree")
        planner = database.planner
        base = planner.cache_info()
        width = (TARGET_DOMAIN[1] - TARGET_DOMAIN[0]) * 1e-2
        predicates = [RangePredicate("target", 10.0 * i, 10.0 * i + width)
                      for i in range(16)]
        results = database.query_conjunctive_many("t", predicates)
        assert all(r.group_size == 16 for r in results)
        info = planner.cache_info()
        # One planner visit for the whole batch; 15 members amortised.
        assert info.misses + info.hits == base.misses + base.hits + 1
        assert info.replays >= base.replays + 15

    def test_replays_exceed_hits_under_batching(self):
        database = build_database(PointerScheme.PHYSICAL, "sorted")
        database.query_many("t", [RangePredicate("target", 1.0, 2.0)
                                  for _ in range(8)])
        info = database.planner.cache_info()
        assert info.replays > info.hits

    def test_explain_surfaces_cache_stats(self):
        database = build_database(PointerScheme.PHYSICAL, "btree")
        plan = database.explain("t", RangePredicate("target", 0.0, 50.0))
        assert plan.cache_stats is not None
        assert "plan cache:" in plan.describe()

    def test_batch_advances_replay_bound(self):
        """Group members count against the cached plan's replay bound."""
        from repro.engine.planner import _MAX_PLAN_REPLAYS
        database = build_database(PointerScheme.PHYSICAL, "cm")
        planner = database.planner
        predicate = RangePredicate("target", 5.0, 105.0)
        database.query("t", predicate)  # prime the cache
        database.query_many("t", [predicate] * (2 * _MAX_PLAN_REPLAYS))
        before = planner.cache_info()
        # The long batch exhausted the cached plan's replay bound, so the
        # next planner visit must replan from scratch.
        database.query("t", predicate)
        after = planner.cache_info()
        assert after.misses == before.misses + 1
