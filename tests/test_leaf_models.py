"""Unit tests for the adaptive leaf-model families and their selection.

The tentpole behaviour under test (see docs/architecture.md, "Adaptive leaf
models"): every TRS-Tree leaf fits linear, log-linear and piecewise-linear
candidates, keeps whichever needs the smallest band at equal coverage, widens
a noise-floor band only within the ``max_fp_ratio`` candidate budget, and
demotes hopeless leaves to exact outlier-only storage.
"""

import numpy as np
import pytest

from repro.core.config import TRSTreeConfig
from repro.core.regression import (
    LeafModel,
    LinearModel,
    LogLinearModel,
    OutlierOnlyModel,
    PiecewiseLinearModel,
    estimate_leaf_false_positives,
    select_leaf_model,
)
from repro.core.trs_tree import TRSTree
from repro.index.base import KeyRange


class TestLogLinearModel:
    def make_model(self, epsilon=0.5):
        return LogLinearModel(beta=10.0, alpha=3.0, epsilon=epsilon, shift=1.0)

    def test_predict_uses_log_feature(self):
        model = self.make_model()
        assert model.predict(1.0) == pytest.approx(3.0)  # log1p(0) == 0
        assert model.predict(float(np.e) + 0.0) == pytest.approx(
            10.0 * np.log1p(np.e - 1.0) + 3.0)

    def test_below_shift_clamps_to_anchor(self):
        model = self.make_model()
        assert model.predict(-100.0) == model.predict(1.0)

    def test_covers_and_covers_many_agree(self):
        model = self.make_model(epsilon=1.0)
        m = np.array([1.0, 5.0, 20.0, 100.0])
        n = np.array([model.predict(v) for v in m])
        n[2] += 5.0  # push one outside the band
        vectorised = model.covers_many(m, n)
        scalar = [model.covers(float(a), float(b)) for a, b in zip(m, n)]
        assert list(vectorised) == scalar == [True, True, False, True]

    def test_host_range_is_monotone_envelope(self):
        model = self.make_model(epsilon=0.25)
        host = model.host_range(KeyRange(2.0, 50.0))
        assert host.low <= model.predict(2.0) - 0.25
        assert host.high >= model.predict(50.0) + 0.25

    def test_host_range_negative_beta_swaps_endpoints(self):
        model = LogLinearModel(beta=-4.0, alpha=0.0, epsilon=0.1, shift=0.0)
        host = model.host_range(KeyRange(1.0, 10.0))
        assert host.low <= model.predict(10.0) - 0.1
        assert host.high >= model.predict(1.0) + 0.1


class TestPiecewiseLinearModel:
    def make_model(self, epsilon=0.5):
        # Two segments over [0, 10]: y = x on [0, 5), y = 2x - 5 on [5, 10].
        return PiecewiseLinearModel(
            bounds=(0.0, 5.0, 10.0), betas=(1.0, 2.0), alphas=(0.0, -5.0),
            epsilon=epsilon,
        )

    def test_predict_picks_the_right_segment(self):
        model = self.make_model()
        assert model.predict(2.0) == pytest.approx(2.0)
        assert model.predict(7.0) == pytest.approx(9.0)

    def test_boundary_value_routes_like_the_tree(self):
        model = self.make_model()
        # 5.0 belongs to the right-hand segment, matching route_index.
        assert model.predict(5.0) == pytest.approx(5.0)

    def test_edge_segments_extrapolate(self):
        model = self.make_model()
        assert model.predict(-2.0) == pytest.approx(-2.0)
        assert model.predict(12.0) == pytest.approx(19.0)

    def test_covers_many_matches_scalar(self):
        model = self.make_model(epsilon=0.3)
        m = np.array([1.0, 4.9, 5.0, 9.0, 12.0])
        n = np.array([model.predict(float(v)) for v in m])
        n[1] += 1.0
        vectorised = list(model.covers_many(m, n))
        scalar = [model.covers(float(a), float(b)) for a, b in zip(m, n)]
        assert vectorised == scalar
        assert vectorised == [True, False, True, True, True]

    def test_host_range_covers_every_overlapped_segment(self):
        model = self.make_model(epsilon=0.5)
        host = model.host_range(KeyRange(3.0, 8.0))
        # Predictions along [3, 8] span [3, 11]; the band pads by 0.5.
        assert host.low <= 2.5
        assert host.high >= 11.5

    def test_host_range_point_probe(self):
        model = self.make_model(epsilon=0.5)
        host = model.host_range(KeyRange(7.0, 7.0))
        assert host.low <= 8.5 and host.high >= 9.5
        assert host.width < 1.1


class TestOutlierOnlyModel:
    def test_covers_nothing(self):
        model = OutlierOnlyModel()
        assert not model.covers(1.0, 0.0)
        assert not model.covers_many(np.array([1.0, 2.0]),
                                     np.array([0.0, 0.0])).any()

    def test_satisfies_protocol(self):
        for model in (OutlierOnlyModel(), LinearModel(1.0, 0.0, 0.1),
                      LogLinearModel(1.0, 0.0, 0.1, 0.0),
                      PiecewiseLinearModel((0.0, 1.0), (1.0,), (0.0,), 0.1)):
            assert isinstance(model, LeafModel)


class TestSelectLeafModel:
    def test_linear_data_takes_the_linear_fast_path(self):
        m = np.linspace(0.0, 100.0, 2000)
        n = 3.0 * m + 1.0
        fit = select_leaf_model(m, n, KeyRange(0.0, 100.0), error_bound=2.0,
                                trim_fraction=0.1, max_fp_ratio=0.5)
        assert fit.kind == "linear"
        # Paper semantics preserved: epsilon straight from the error bound.
        assert fit.model.epsilon == pytest.approx(3.0 * 100 * 2.0 / (2 * 2000))

    def test_log_data_selects_log_family(self):
        rng = np.random.default_rng(0)
        m = rng.uniform(1.0, 1000.0, size=4000)
        n = 50.0 * np.log1p(m - 1.0) + 7.0
        fit = select_leaf_model(m, n, KeyRange(1.0, 1000.0), error_bound=2.0,
                                trim_fraction=0.1, max_fp_ratio=0.5)
        assert fit.kind == "log"
        covered = fit.model.covers_many(m, n)
        assert covered.mean() >= 0.9

    def test_curved_data_selects_piecewise_family(self):
        rng = np.random.default_rng(1)
        m = rng.uniform(0.0, 10.0, size=4000)
        n = np.where(m < 5.0, 2.0 * m, 20.0 - 2.0 * m)  # tent: no log fit
        fit = select_leaf_model(m, n, KeyRange(0.0, 10.0), error_bound=2.0,
                                trim_fraction=0.1, max_fp_ratio=0.5)
        assert fit.kind == "piecewise"
        assert fit.model.covers_many(m, n).mean() >= 0.9

    def test_noise_floor_band_widens_within_budget(self):
        """Noise the segments cannot reduce widens the band instead of
        cascading futile splits."""
        rng = np.random.default_rng(2)
        m = rng.uniform(0.0, 100.0, size=4000)
        noise = rng.normal(0.0, 0.5, size=4000)
        n = 2.0 * m + noise
        fit = select_leaf_model(m, n, KeyRange(0.0, 100.0), error_bound=2.0,
                                trim_fraction=0.1, max_fp_ratio=0.5)
        error_bound_eps = 2.0 * 100 * 2.0 / (2 * 4000)  # 0.05 << noise
        assert fit.model.epsilon > error_bound_eps
        assert fit.model.covers_many(m, n).mean() >= 0.9
        # The widened band stays within the leaf-spanning candidate budget.
        covered = fit.model.covers_many(m, n)
        estimated = estimate_leaf_false_positives(fit.model, n[covered])
        assert estimated <= 0.5 * covered.sum() * 1.01

    def test_curvature_band_is_not_widened(self):
        """A reducible band must stay tight so the outlier criterion splits."""
        rng = np.random.default_rng(3)
        m = rng.uniform(0.0, 1000.0, size=4000)
        n = np.sqrt(m) * 100.0
        fit = select_leaf_model(m, n, KeyRange(0.0, 1000.0), error_bound=2.0,
                                trim_fraction=0.1, max_fp_ratio=0.5)
        # Far from covering: the piecewise dry run shows splitting helps, so
        # no widening happens and the tree will split this node instead.
        assert fit.model.covers_many(m, n).mean() < 0.9


class TestFalsePositiveEstimate:
    def test_zero_for_empty_or_bandless(self):
        assert estimate_leaf_false_positives(LinearModel(1.0, 0.0, 0.0),
                                             np.array([1.0, 2.0])) == 0.0
        assert estimate_leaf_false_positives(LinearModel(1.0, 0.0, 1.0),
                                             np.array([])) == 0.0

    def test_band_width_times_density(self):
        covered_hosts = np.linspace(0.0, 100.0, 101)  # density ~1 per unit
        model = LinearModel(1.0, 0.0, 5.0)
        estimated = estimate_leaf_false_positives(model, covered_hosts)
        assert estimated == pytest.approx(2 * 5.0 * 101 / 100.0)


class TestTreeLevelAdaptivity:
    def test_glitchy_tiny_leaves_are_demoted_not_banded(self):
        """A leaf whose best band floods the host index stores its tuples
        exactly instead (the OutlierOnlyModel demotion)."""
        rng = np.random.default_rng(4)
        # A tiny, glitch-dominated dataset below min_split_size: the fit is
        # dragged so the error-bound band is enormous relative to the data.
        m = np.array([1.0, 1.001, 1.002, 1.003, 1.004])
        n = np.array([10.0, 10.0, 10.0, 500.0, -500.0])
        tree = TRSTree(TRSTreeConfig(min_split_size=32))
        tree.build(m, n, np.arange(5))
        leaf = tree.leaves()[0]
        assert isinstance(leaf.model, OutlierOnlyModel)
        assert leaf.num_model_covered == 0
        assert len(leaf.outliers) == 5
        # Exact answers straight from the buffer, no host probe at all.
        result = tree.lookup(KeyRange(1.0, 1.004))
        assert result.host_ranges == []
        assert sorted(result.outlier_tids) == [0, 1, 2, 3, 4]
        del rng

    def test_estimated_fp_ratio_feeds_planner_prior(self):
        rng = np.random.default_rng(5)
        m = rng.uniform(0.0, 100.0, size=4000)
        n = 2.0 * m + rng.normal(0.0, 0.5, size=4000)
        tree = TRSTree()
        tree.build(m, n, np.arange(4000))
        ratio = tree.estimated_fp_ratio()
        assert ratio is not None
        assert 0.0 <= ratio < 1.0

    def test_empty_tree_has_no_estimate(self):
        tree = TRSTree()
        tree.build([], [], [])
        assert tree.estimated_fp_ratio() is None
