"""Unit tests for KeyRange, including the union used by TRS-Tree lookups."""

from hypothesis import given
from hypothesis import strategies as st

from repro.index.base import KeyRange


class TestKeyRangeBasics:
    def test_normalises_reversed_bounds(self):
        reversed_range = KeyRange(10.0, 2.0)
        assert reversed_range.low == 2.0
        assert reversed_range.high == 10.0

    def test_point_range(self):
        point = KeyRange(5.0, 5.0)
        assert point.is_point
        assert point.width == 0.0
        assert point.contains(5.0)
        assert not point.contains(5.1)

    def test_contains_is_inclusive(self):
        r = KeyRange(1.0, 2.0)
        assert r.contains(1.0) and r.contains(2.0)
        assert not r.contains(0.999) and not r.contains(2.001)

    def test_overlap_and_intersection(self):
        a = KeyRange(0.0, 10.0)
        b = KeyRange(5.0, 15.0)
        c = KeyRange(11.0, 12.0)
        assert a.overlaps(b)
        assert not a.overlaps(c)
        assert a.intersect(b) == KeyRange(5.0, 10.0)
        assert a.intersect(c) is None

    def test_touching_ranges_overlap(self):
        assert KeyRange(0.0, 1.0).overlaps(KeyRange(1.0, 2.0))


class TestKeyRangeUnion:
    def test_merges_overlapping(self):
        merged = KeyRange.union([KeyRange(0, 5), KeyRange(3, 8), KeyRange(10, 12)])
        assert merged == [KeyRange(0, 8), KeyRange(10, 12)]

    def test_empty_union(self):
        assert KeyRange.union([]) == []

    def test_union_of_identical_ranges(self):
        merged = KeyRange.union([KeyRange(1, 2)] * 5)
        assert merged == [KeyRange(1, 2)]

    @given(st.lists(
        st.tuples(st.floats(-1e6, 1e6, allow_nan=False),
                  st.floats(0, 1e5, allow_nan=False)),
        max_size=30,
    ))
    def test_union_is_disjoint_and_covering(self, raw):
        ranges = [KeyRange(low, low + width) for low, width in raw]
        merged = KeyRange.union(ranges)
        # Disjoint and sorted.
        for first, second in zip(merged, merged[1:]):
            assert first.high < second.low
        # Every original endpoint is covered by some merged range.
        for original in ranges:
            assert any(m.contains(original.low) and m.contains(original.high)
                       for m in merged)
