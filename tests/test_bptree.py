"""Unit and property-based tests for the in-memory B+-tree."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import KeyNotFoundError, StorageError
from repro.index.base import KeyRange
from repro.index.bptree import BPlusTree


class TestInsertSearch:
    def test_point_search_finds_inserted_keys(self):
        tree = BPlusTree(node_capacity=4)
        for i in range(100):
            tree.insert(float(i), i * 10)
        assert tree.search(42.0) == [420]
        assert tree.search(999.0) == []
        assert tree.num_entries == 100

    def test_duplicate_keys_accumulate(self):
        tree = BPlusTree(node_capacity=4)
        tree.insert(1.0, "a")
        tree.insert(1.0, "b")
        assert sorted(tree.search(1.0)) == ["a", "b"]
        assert tree.num_entries == 2

    def test_height_grows_with_entries(self):
        tree = BPlusTree(node_capacity=4)
        for i in range(200):
            tree.insert(float(i), i)
        assert tree.height >= 3

    def test_rejects_tiny_node_capacity(self):
        with pytest.raises(ValueError):
            BPlusTree(node_capacity=2)


class TestRangeSearch:
    def test_inclusive_bounds(self):
        tree = BPlusTree(node_capacity=4)
        for i in range(50):
            tree.insert(float(i), i)
        result = tree.range_search(KeyRange(10.0, 20.0))
        assert sorted(result) == list(range(10, 21))

    def test_range_outside_domain_is_empty(self):
        tree = BPlusTree()
        for i in range(10):
            tree.insert(float(i), i)
        assert tree.range_search(KeyRange(100.0, 200.0)) == []

    def test_range_search_many_unions_ranges(self):
        tree = BPlusTree()
        for i in range(30):
            tree.insert(float(i), i)
        result = tree.range_search_many([KeyRange(0, 2), KeyRange(10, 12)])
        assert sorted(result) == [0, 1, 2, 10, 11, 12]

    def test_range_search_array_matches_scalar(self):
        tree = BPlusTree(node_capacity=4)
        rng = np.random.default_rng(3)
        for key in rng.uniform(0, 100, size=300):
            tree.insert(float(key), int(key * 7))
        probe = KeyRange(25.0, 75.0)
        array_result = tree.range_search_array(probe)
        assert isinstance(array_result, np.ndarray)
        assert sorted(array_result.tolist()) == sorted(tree.range_search(probe))

    def test_range_search_array_empty(self):
        tree = BPlusTree()
        tree.insert(1.0, 1)
        result = tree.range_search_array(KeyRange(100.0, 200.0))
        assert isinstance(result, np.ndarray)
        assert result.size == 0

    def test_range_search_many_array_concatenates(self):
        tree = BPlusTree()
        for i in range(30):
            tree.insert(float(i), i)
        result = tree.range_search_many_array([KeyRange(0, 2), KeyRange(10, 12)])
        assert sorted(result.tolist()) == [0, 1, 2, 10, 11, 12]


class TestDelete:
    def test_delete_removes_single_pair(self):
        tree = BPlusTree(node_capacity=4)
        tree.insert(1.0, "a")
        tree.insert(1.0, "b")
        tree.delete(1.0, "a")
        assert tree.search(1.0) == ["b"]
        assert tree.num_entries == 1

    def test_delete_missing_key_raises(self):
        tree = BPlusTree()
        with pytest.raises(KeyNotFoundError):
            tree.delete(5.0, 1)

    def test_delete_missing_tid_raises(self):
        tree = BPlusTree()
        tree.insert(5.0, 1)
        with pytest.raises(KeyNotFoundError):
            tree.delete(5.0, 99)


class TestBulkLoad:
    def test_bulk_load_matches_incremental(self):
        rng = np.random.default_rng(0)
        keys = rng.uniform(0, 1000, size=500)
        bulk = BPlusTree(node_capacity=8)
        bulk.bulk_load((k, i) for i, k in enumerate(keys))
        incremental = BPlusTree(node_capacity=8)
        for i, k in enumerate(keys):
            incremental.insert(k, i)
        probe = KeyRange(200.0, 400.0)
        assert sorted(bulk.range_search(probe)) == sorted(
            incremental.range_search(probe))
        assert bulk.num_entries == incremental.num_entries

    def test_bulk_load_empty(self):
        tree = BPlusTree()
        tree.bulk_load([])
        assert tree.num_entries == 0

    def test_bulk_load_on_nonempty_tree_raises(self):
        """Bulk loading a populated tree would silently drop its entries."""
        tree = BPlusTree()
        tree.insert(1.0, 1)
        with pytest.raises(StorageError):
            tree.bulk_load([(2.0, 2)])
        # The original entry is still intact and still counted.
        assert tree.search(1.0) == [1]
        assert tree.num_entries == 1

    def test_bulk_load_twice_raises(self):
        tree = BPlusTree()
        tree.bulk_load([(1.0, 1), (2.0, 2)])
        with pytest.raises(StorageError):
            tree.bulk_load([(3.0, 3)])

    def test_items_are_sorted(self):
        tree = BPlusTree(node_capacity=4)
        tree.bulk_load([(float(i % 7), i) for i in range(50)])
        keys = [key for key, _ in tree.items()]
        assert keys == sorted(keys)
        assert len(keys) == 50


class TestMemoryAndStats:
    def test_memory_grows_with_entries(self):
        tree = BPlusTree()
        empty = tree.memory_bytes()
        for i in range(1000):
            tree.insert(float(i), i)
        assert tree.memory_bytes() > empty

    def test_operation_counters(self):
        tree = BPlusTree()
        tree.insert(1.0, 1)
        tree.search(1.0)
        tree.range_search(KeyRange(0, 2))
        tree.delete(1.0, 1)
        assert tree.stats.inserts == 1
        assert tree.stats.lookups == 1
        assert tree.stats.range_lookups == 1
        assert tree.stats.deletes == 1


class TestBPlusTreeProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 500), st.integers(0, 10_000)),
                    max_size=300))
    def test_matches_reference_dict(self, pairs):
        """The tree agrees with a brute-force multimap on point and range probes."""
        tree = BPlusTree(node_capacity=4)
        reference: dict[float, list[int]] = {}
        for key, value in pairs:
            tree.insert(float(key), value)
            reference.setdefault(float(key), []).append(value)
        for key in list(reference)[:20]:
            assert sorted(tree.search(key)) == sorted(reference[key])
        expected = sorted(
            v for k, values in reference.items() if 100 <= k <= 300 for v in values
        )
        assert sorted(tree.range_search(KeyRange(100, 300))) == expected

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(0, 200), min_size=1, max_size=200),
           st.data())
    def test_insert_then_delete_subset(self, keys, data):
        """Deleting a subset leaves exactly the remaining entries."""
        tree = BPlusTree(node_capacity=4)
        for i, key in enumerate(keys):
            tree.insert(float(key), i)
        to_delete = data.draw(st.sets(st.integers(0, len(keys) - 1),
                                      max_size=len(keys)))
        for i in to_delete:
            tree.delete(float(keys[i]), i)
        remaining = sorted(i for i in range(len(keys)) if i not in to_delete)
        found = sorted(tree.range_search(KeyRange(-1.0, 1000.0)))
        assert found == remaining
