"""Unit tests for pages, the simulated disk, the buffer pool and the heap file."""

import pytest

from repro.errors import BufferPoolError, PageError, StorageError, TupleNotFoundError
from repro.storage.buffer_pool import BufferPool
from repro.storage.disk import DiskManager, IOCostModel
from repro.storage.heap_file import HeapFile
from repro.storage.identifiers import decode_page_slot, encode_page_slot
from repro.storage.pages import SlottedPage, slots_per_page
from repro.storage.schema import numeric_schema


class TestSlottedPage:
    def test_insert_read_roundtrip(self):
        page = SlottedPage(page_id=0, capacity=4)
        slot = page.insert((1.0, 2.0))
        assert page.read(slot) == (1.0, 2.0)
        assert page.num_live == 1

    def test_full_page_rejects_insert(self):
        page = SlottedPage(page_id=0, capacity=2)
        page.insert((1,))
        page.insert((2,))
        assert page.is_full
        with pytest.raises(PageError):
            page.insert((3,))

    def test_delete_frees_slot_for_reuse(self):
        page = SlottedPage(page_id=0, capacity=2)
        slot = page.insert((1,))
        page.delete(slot)
        assert page.num_live == 0
        assert page.insert((2,)) == slot

    def test_read_empty_slot_raises(self):
        page = SlottedPage(page_id=0, capacity=2)
        with pytest.raises(PageError):
            page.read(0)

    def test_update_overwrites(self):
        page = SlottedPage(page_id=0, capacity=2)
        slot = page.insert((1,))
        page.update(slot, (9,))
        assert page.read(slot) == (9,)

    def test_slots_per_page_positive(self):
        assert slots_per_page(row_byte_width=24) > 100
        with pytest.raises(PageError):
            slots_per_page(row_byte_width=100_000)


class TestPageSlotEncoding:
    def test_roundtrip(self):
        location = encode_page_slot(7, 13, slots_per_page=100)
        assert decode_page_slot(location, slots_per_page=100) == (7, 13)


class TestDiskManager:
    def test_read_write_counters(self):
        disk = DiskManager()
        page = disk.allocate_page(capacity=4)
        page.insert((1.0,))
        disk.write_page(page)
        fetched = disk.read_page(page.page_id)
        assert fetched.read(0) == (1.0,)
        assert disk.stats.page_reads == 1
        assert disk.stats.page_writes == 1
        assert disk.stats.pages_allocated == 1

    def test_read_unallocated_raises(self):
        with pytest.raises(StorageError):
            DiskManager().read_page(42)

    def test_simulated_time_uses_cost_model(self):
        disk = DiskManager(cost_model=IOCostModel(read_latency_us=100.0,
                                                  write_latency_us=50.0))
        page = disk.allocate_page(capacity=1)
        disk.write_page(page)
        disk.read_page(page.page_id)
        assert disk.simulated_io_seconds() == pytest.approx(150e-6)

    def test_reads_return_copies(self):
        disk = DiskManager()
        page = disk.allocate_page(capacity=2)
        page.insert((1.0,))
        disk.write_page(page)
        copy_one = disk.read_page(page.page_id)
        copy_one.insert((2.0,))
        copy_two = disk.read_page(page.page_id)
        assert copy_two.num_live == 1


class TestBufferPool:
    def test_hit_and_miss_accounting(self):
        disk = DiskManager()
        pool = BufferPool(disk, capacity=2)
        page = pool.new_page(capacity=4)
        pool.unpin_page(page.page_id, dirty=True)
        pool.fetch_page(page.page_id)
        pool.unpin_page(page.page_id)
        assert pool.stats.hits == 1
        assert pool.stats.misses == 0

    def test_eviction_flushes_dirty_pages(self):
        disk = DiskManager()
        pool = BufferPool(disk, capacity=1)
        first = pool.new_page(capacity=4)
        first.insert(("payload",))
        pool.unpin_page(first.page_id, dirty=True)
        second = pool.new_page(capacity=4)
        pool.unpin_page(second.page_id, dirty=True)
        assert pool.stats.evictions >= 1
        pool.flush_all()
        reread = disk.read_page(first.page_id)
        assert reread.read(0) == ("payload",)

    def test_all_pinned_raises(self):
        pool = BufferPool(DiskManager(), capacity=1)
        page = pool.new_page(capacity=4)  # pinned
        assert page is not None
        with pytest.raises(BufferPoolError):
            pool.new_page(capacity=4)

    def test_unpin_unknown_page_raises(self):
        pool = BufferPool(DiskManager(), capacity=1)
        with pytest.raises(BufferPoolError):
            pool.unpin_page(123)

    def test_capacity_must_be_positive(self):
        with pytest.raises(BufferPoolError):
            BufferPool(DiskManager(), capacity=0)


class TestHeapFile:
    @pytest.fixture
    def heap(self):
        schema = numeric_schema("h", ["pk", "x"], primary_key="pk")
        return HeapFile(schema, BufferPool(DiskManager(), capacity=16))

    def test_insert_fetch_roundtrip(self, heap):
        location = heap.insert({"pk": 1.0, "x": 2.0})
        assert heap.fetch(location) == {"pk": 1.0, "x": 2.0}
        assert heap.value(location, "x") == 2.0
        assert heap.num_rows == 1

    def test_spans_multiple_pages(self, heap):
        locations = heap.insert_many(
            [{"pk": float(i), "x": float(i)} for i in range(1500)]
        )
        assert heap.num_pages >= 2
        assert heap.fetch(locations[-1])["pk"] == 1499.0

    def test_delete_reduces_count(self, heap):
        location = heap.insert({"pk": 1.0, "x": 2.0})
        heap.delete(location)
        assert heap.num_rows == 0

    def test_fetch_bad_location_raises(self, heap):
        with pytest.raises(TupleNotFoundError):
            heap.fetch(10**9)

    def test_scan_yields_all_rows(self, heap):
        heap.insert_many([{"pk": float(i), "x": float(i * 2)} for i in range(10)])
        rows = dict(heap.scan())
        assert len(rows) == 10
        assert all(row["x"] == row["pk"] * 2 for row in rows.values())
